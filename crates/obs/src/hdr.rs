//! Log-scaled (HDR-style) latency histograms with quantile estimation.
//!
//! The fixed-bucket [`crate::metrics`] histograms answer "how is the
//! signed-error distribution shaped?" — a question whose bucket bounds are
//! known up front. Latency questions are different: a prediction cell takes
//! microseconds warm and tens of milliseconds cold, a probe sweep spans
//! five orders of magnitude across tiers, and the serving daemon (ROADMAP
//! item 1) needs p50/p99/p999 with bounded *relative* error across all of
//! it. A [`HdrHistogram`] therefore buckets geometrically: every bucket is
//! `GROWTH` times wider than the last, so the quantile estimate's relative
//! error is the same ~7.5% everywhere from 100ns to hours, at a fixed 352
//! atomic counters per histogram.
//!
//! Recording is lock-free (relaxed atomics only); snapshots are sparse
//! (only occupied buckets serialize into the run manifest).

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Lower bound of bucket 0, in the histogram's value unit (seconds for all
/// the built-in latency histograms): 100ns — below any span worth profiling.
pub const MIN_TRACKED: f64 = 1e-7;

/// Geometric buckets per decade. 32 per decade puts adjacent bucket bounds
/// `10^(1/32) ≈ 1.0746` apart, bounding quantile relative error at ~7.5%.
pub const BUCKETS_PER_DECADE: u32 = 32;

/// Decades covered above [`MIN_TRACKED`]: `1e-7 .. 1e4` seconds (100ns to
/// ~2.8 hours). Values beyond the top clamp into the last bucket; the exact
/// observed maximum is tracked separately.
pub const DECADES: u32 = 11;

/// Total bucket count.
pub const BUCKET_COUNT: usize = (BUCKETS_PER_DECADE * DECADES) as usize;

/// Per-prediction-cell wall time (one `machine:*` span in the predictions
/// phase), seconds.
pub const LAT_PREDICTION: &str = "lat.prediction";

/// Per-probe-sweep wall time (one cold `probe-sweep:*` measurement),
/// seconds.
pub const LAT_PROBE_SWEEP: &str = "lat.probe_sweep";

/// Per-shard wall time (one `shard:K` span of a `--jobs N` run), seconds.
pub const LAT_SHARD: &str = "lat.shard";

/// The quantiles every renderer and diff reports, with display labels.
pub const REPORTED_QUANTILES: &[(&str, f64)] =
    &[("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("p999", 0.999)];

/// Bucket index for `value`, or `None` for underflow (`value < MIN_TRACKED`).
/// Overflow clamps to the last bucket.
fn bucket_index(value: f64) -> Option<usize> {
    if value.is_nan() || value < MIN_TRACKED {
        return None; // negative, NaN, or below range → underflow bucket
    }
    let idx = ((value / MIN_TRACKED).log10() * f64::from(BUCKETS_PER_DECADE)).floor();
    Some((idx as usize).min(BUCKET_COUNT - 1))
}

/// Lower bound of bucket `i` — how consumers of a sparse
/// [`HdrSnapshot`] turn `(index, count)` pairs back into value ranges.
#[must_use]
pub fn bucket_low(i: usize) -> f64 {
    MIN_TRACKED * 10f64.powf(i as f64 / f64::from(BUCKETS_PER_DECADE))
}

/// Geometric midpoint of bucket `i` — the quantile representative value.
#[must_use]
pub fn bucket_mid(i: usize) -> f64 {
    MIN_TRACKED * 10f64.powf((i as f64 + 0.5) / f64::from(BUCKETS_PER_DECADE))
}

/// A live log-scaled histogram: lock-free writes, snapshot-on-read.
#[derive(Debug)]
pub struct HdrHistogram {
    buckets: Vec<AtomicU64>,
    /// Observations below [`MIN_TRACKED`] (or non-finite); they count
    /// toward quantiles at the bottom of the range.
    underflow: AtomicU64,
    /// Running sum as `f64` bits, CAS-updated.
    sum_bits: AtomicU64,
    /// Exact observed minimum as `f64` bits (`+inf` while empty).
    low_bits: AtomicU64,
    /// Exact observed maximum as `f64` bits (`-inf` while empty).
    high_bits: AtomicU64,
}

impl Default for HdrHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl HdrHistogram {
    /// Fresh, empty histogram.
    #[must_use]
    pub fn new() -> Self {
        HdrHistogram {
            buckets: (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect(),
            underflow: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            low_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            high_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Record one observation. Never blocks: bucket bumps are relaxed
    /// atomics, the sum/min/max fold with CAS loops.
    pub fn observe(&self, value: f64) {
        match bucket_index(value) {
            Some(i) => self.buckets[i].fetch_add(1, Ordering::Relaxed),
            None => self.underflow.fetch_add(1, Ordering::Relaxed),
        };
        let value = if value.is_finite() { value } else { 0.0 };
        let _ = self
            .sum_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + value).to_bits())
            });
        let _ = self
            .low_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                (value < f64::from_bits(bits)).then(|| value.to_bits())
            });
        let _ = self
            .high_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                (value > f64::from_bits(bits)).then(|| value.to_bits())
            });
    }

    /// Sparse point-in-time copy.
    #[must_use]
    pub fn snapshot(&self) -> HdrSnapshot {
        let buckets: Vec<(u64, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i as u64, n))
            })
            .collect();
        let low = f64::from_bits(self.low_bits.load(Ordering::Relaxed));
        let high = f64::from_bits(self.high_bits.load(Ordering::Relaxed));
        HdrSnapshot {
            underflow: self.underflow.load(Ordering::Relaxed),
            buckets,
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            low: if low.is_finite() { low } else { 0.0 },
            high: if high.is_finite() { high } else { 0.0 },
        }
    }
}

/// Serializable sparse copy of a [`HdrHistogram`]: only occupied buckets,
/// as `(index, count)` pairs in ascending index order. The geometry
/// ([`MIN_TRACKED`], [`BUCKETS_PER_DECADE`]) is a crate-wide constant, so
/// the snapshot carries counts, not bounds.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct HdrSnapshot {
    /// Observations below the tracked range (counted at the bottom for
    /// quantile purposes).
    pub underflow: u64,
    /// `(bucket index, count)` for every occupied bucket, ascending.
    pub buckets: Vec<(u64, u64)>,
    /// Sum of every observed value.
    pub sum: f64,
    /// Exact minimum observed value (0 while empty).
    pub low: f64,
    /// Exact maximum observed value (0 while empty).
    pub high: f64,
}

impl HdrSnapshot {
    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.underflow + self.buckets.iter().map(|&(_, n)| n).sum::<u64>()
    }

    /// Mean observed value, or `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum / n as f64)
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) of the recorded
    /// distribution, or `None` when empty. The estimate is the geometric
    /// midpoint of the bucket holding the rank, clamped to the exactly
    /// tracked `[low, high]` envelope — so single-observation histograms
    /// and the extreme quantiles report exact values, and everything in
    /// between carries the ~7.5% bucket-relative error.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut cum = self.underflow;
        if cum >= rank {
            return Some(self.low);
        }
        for &(i, count) in &self.buckets {
            cum += count;
            if cum >= rank {
                return Some(bucket_mid(i as usize).clamp(self.low, self.high));
            }
        }
        Some(self.high)
    }

    /// Median estimate.
    #[must_use]
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 99th-percentile estimate.
    #[must_use]
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// 99.9th-percentile estimate.
    #[must_use]
    pub fn p999(&self) -> Option<f64> {
        self.quantile(0.999)
    }

    /// Whether the bucket list is well-formed: strictly ascending indices,
    /// all in range, no zero counts (what MS403 checks on a manifest).
    #[must_use]
    pub fn is_coherent(&self) -> bool {
        self.buckets.windows(2).all(|w| w[0].0 < w[1].0)
            && self
                .buckets
                .iter()
                .all(|&(i, n)| (i as usize) < BUCKET_COUNT && n > 0)
            && self.sum.is_finite()
            && self.low.is_finite()
            && self.high.is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_geometric_and_cover_the_range() {
        assert_eq!(bucket_index(MIN_TRACKED), Some(0));
        assert_eq!(bucket_index(1e-8), None, "below range underflows");
        assert_eq!(bucket_index(-1.0), None);
        assert_eq!(bucket_index(f64::NAN), None);
        assert_eq!(
            bucket_index(1e99),
            Some(BUCKET_COUNT - 1),
            "overflow clamps"
        );
        // One second lands in a bucket whose bounds straddle it (up to FP
        // rounding at the exact decade edge).
        let one = bucket_index(1.0).unwrap();
        assert!(bucket_low(one) <= 1.0 * (1.0 + 1e-9) && 1.0 < bucket_low(one + 1));
        // Adjacent bounds are GROWTH apart everywhere.
        let growth = 10f64.powf(1.0 / f64::from(BUCKETS_PER_DECADE));
        for i in 0..BUCKET_COUNT - 1 {
            let ratio = bucket_low(i + 1) / bucket_low(i);
            assert!((ratio - growth).abs() < 1e-9, "bucket {i}: {ratio}");
        }
    }

    #[test]
    fn quantiles_carry_bounded_relative_error() {
        let h = HdrHistogram::new();
        // A log-uniform spread over 5 decades, plus a long tail.
        let values: Vec<f64> = (0..1000)
            .map(|i| 1e-6 * 10f64.powf(f64::from(i) * 5.0 / 1000.0))
            .collect();
        for &v in &values {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 1000);
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        for &(_, q) in REPORTED_QUANTILES {
            let exact = sorted[((q * 1000.0).ceil() as usize - 1).min(999)];
            let est = snap.quantile(q).unwrap();
            let rel = (est - exact).abs() / exact;
            assert!(rel < 0.08, "q={q}: est {est} vs exact {exact} ({rel})");
        }
        assert!((snap.low - 1e-6).abs() / 1e-6 < 1e-12);
    }

    #[test]
    fn single_observation_quantiles_are_exact() {
        let h = HdrHistogram::new();
        h.observe(0.0123);
        let snap = h.snapshot();
        for &(_, q) in REPORTED_QUANTILES {
            assert_eq!(snap.quantile(q), Some(0.0123), "clamped to [low, high]");
        }
        assert_eq!(snap.mean(), Some(0.0123));
    }

    #[test]
    fn underflow_and_empty_are_handled() {
        let snap = HdrHistogram::new().snapshot();
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.quantile(0.5), None);
        assert_eq!(snap.mean(), None);
        assert!(snap.is_coherent());

        let h = HdrHistogram::new();
        h.observe(1e-9); // below MIN_TRACKED
        h.observe(1.0);
        let snap = h.snapshot();
        assert_eq!(snap.underflow, 1);
        assert_eq!(snap.count(), 2);
        assert_eq!(snap.quantile(0.01), Some(1e-9), "underflow reports low");
        assert!(snap.is_coherent());
    }

    #[test]
    fn snapshot_is_sparse_and_coherent() {
        let h = HdrHistogram::new();
        for _ in 0..5 {
            h.observe(0.001);
        }
        h.observe(2.0);
        let snap = h.snapshot();
        assert_eq!(snap.buckets.len(), 2, "only occupied buckets serialize");
        assert_eq!(snap.buckets[0].1, 5);
        assert!(snap.is_coherent());
        assert!((snap.sum - 0.005 - 2.0).abs() < 1e-12);
        assert_eq!(snap.high, 2.0);

        let mut bad = snap.clone();
        bad.buckets.reverse();
        assert!(!bad.is_coherent(), "descending indices are incoherent");
    }

    #[test]
    fn concurrent_observes_lose_nothing() {
        let h = std::sync::Arc::new(HdrHistogram::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = std::sync::Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..1000 {
                        h.observe(1e-4 * f64::from(t * 1000 + i + 1));
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count(), 4000);
    }
}
