//! metasim-obs: structured tracing, metrics, and run manifests for the
//! 1,350-prediction study pipeline.
//!
//! The paper's credibility rests on 150 observations × 9 metrics being
//! computed the same way every time; this crate makes every run *observable*
//! without changing a single computed value. Three layers:
//!
//! * **Spans** — hierarchical wall-time intervals
//!   (study → phase → app → cpu-count → machine → metric), recorded through
//!   the [`Recorder`] trait. When no recorder is installed the
//!   instrumentation collapses to one relaxed atomic load per call site, so
//!   library users who never ask for observability pay nothing and study
//!   outputs are byte-identical either way.
//! * **Metrics** — named counters, gauges, and fixed-bucket histograms with
//!   a deterministic [`MetricsSnapshot`] API (probe sweeps run, cache
//!   hits/misses per artifact kind, memsim addresses simulated, convolution
//!   terms evaluated, the per-prediction signed-error distribution, …).
//! * **Run manifests** — a JSON provenance record
//!   ([`manifest::RunManifest`]) emitted at study end: schema version,
//!   config digest, cache state, the per-phase span tree, the metric
//!   snapshot, and the slowest spans. `metasim obs summarize` renders it;
//!   the `MS4xx` audit rules ([`audit`]) statically validate it.
//!
//! Instrumented crates call the free functions here ([`span`],
//! [`counter_add`], [`observe`], [`gauge_set`]); the CLI installs an
//! [`InMemoryRecorder`] globally for one run, and tests inject a private
//! recorder with [`with_recorder`] for isolation.

pub mod audit;
pub mod diff;
pub mod export;
pub mod hdr;
pub mod manifest;
pub mod metrics;
pub mod recorder;
pub mod summarize;

use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

pub use hdr::HdrSnapshot;
pub use metrics::{HistogramSnapshot, MetricsSnapshot};
pub use recorder::{
    InMemoryRecorder, Recorder, SpanId, SpanRecord, WorkerSpanBuffer, WORKER_SPAN_ID_BASE,
};

/// Number of recorders currently reachable (global install + thread-local
/// overrides). The instrumentation fast path is a single relaxed load of
/// this counter: zero means every call below is a no-op.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

/// The process-wide recorder, installed by the CLI for one run.
static GLOBAL: RwLock<Option<Arc<dyn Recorder>>> = RwLock::new(None);

thread_local! {
    /// Per-thread recorder override ([`with_recorder`]); beats the global.
    static LOCAL: RefCell<Option<Arc<dyn Recorder>>> = const { RefCell::new(None) };
    /// The innermost live span on this thread (0 = root).
    static CURRENT: Cell<SpanId> = const { Cell::new(0) };
}

/// Install `recorder` process-wide, replacing any previous one. Spans and
/// metrics from every thread flow into it until [`uninstall`].
pub fn install(recorder: Arc<dyn Recorder>) {
    let mut slot = GLOBAL.write().expect("obs global lock");
    if slot.replace(recorder).is_none() {
        ACTIVE.fetch_add(1, Ordering::SeqCst);
    }
}

/// Remove the process-wide recorder, returning instrumentation to no-ops.
pub fn uninstall() {
    let mut slot = GLOBAL.write().expect("obs global lock");
    if slot.take().is_some() {
        ACTIVE.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Decrements [`ACTIVE`] and clears the thread-local recorder even when the
/// wrapped closure unwinds.
struct LocalGuard {
    prev: Option<Arc<dyn Recorder>>,
}

impl Drop for LocalGuard {
    fn drop(&mut self) {
        LOCAL.with(|l| *l.borrow_mut() = self.prev.take());
        ACTIVE.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Run `f` with `recorder` installed for *this thread only* — the injection
/// point tests use so parallel test binaries never share a recorder. The
/// previous thread-local recorder (if any) is restored afterwards, panics
/// included.
pub fn with_recorder<R>(recorder: Arc<dyn Recorder>, f: impl FnOnce() -> R) -> R {
    let prev = LOCAL.with(|l| l.borrow_mut().replace(recorder));
    ACTIVE.fetch_add(1, Ordering::SeqCst);
    let _guard = LocalGuard { prev };
    f()
}

/// The recorder instrumentation should write to right now, if any:
/// the thread-local override first, then the global install.
#[must_use]
pub fn recorder() -> Option<Arc<dyn Recorder>> {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return None;
    }
    LOCAL
        .with(|l| l.borrow().clone())
        .or_else(|| GLOBAL.read().expect("obs global lock").clone())
}

/// Whether any recorder is reachable (cheap: one relaxed atomic load).
/// Callers may use this to skip building expensive span names.
#[must_use]
pub fn recording() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0
}

/// Add `delta` to the named counter. No-op without a recorder.
pub fn counter_add(name: &str, delta: u64) {
    if let Some(r) = recorder() {
        r.counter_add(name, delta);
    }
}

/// Set the named gauge. No-op without a recorder.
pub fn gauge_set(name: &str, value: f64) {
    if let Some(r) = recorder() {
        r.gauge_set(name, value);
    }
}

/// Record `value` into the named histogram. No-op without a recorder.
pub fn observe(name: &str, value: f64) {
    if let Some(r) = recorder() {
        r.observe(name, value);
    }
}

/// Record `value` (typically a span duration in seconds) into the named
/// log-scaled latency histogram ([`hdr`]). No-op without a recorder.
pub fn observe_hdr(name: &str, value: f64) {
    if let Some(r) = recorder() {
        r.observe_hdr(name, value);
    }
}

/// A copyable handle naming a span, used to parent child spans explicitly —
/// the way instrumented code carries the tree structure across `par_iter`
/// closure boundaries, where thread-local nesting cannot be trusted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanCtx(pub SpanId);

impl SpanCtx {
    /// The root context (spans created under it become tree roots).
    #[must_use]
    pub fn root() -> Self {
        SpanCtx(0)
    }

    /// Open a span as an explicit child of this context.
    #[must_use]
    pub fn span(self, name: impl Into<String>) -> SpanGuard {
        SpanGuard::open(self.0, name.into())
    }
}

/// The innermost live span on this thread, as an explicit context.
#[must_use]
pub fn current_ctx() -> SpanCtx {
    SpanCtx(CURRENT.with(Cell::get))
}

/// Open a span under the thread's current span (implicit nesting).
#[must_use]
pub fn span(name: impl Into<String>) -> SpanGuard {
    current_ctx().span(name)
}

/// An open span. Closes (recording its duration) on drop or via
/// [`finish`](Self::finish), which additionally returns the measured wall
/// time — the study's phase timings come from exactly these values, so the
/// span log and the reported timings can never disagree.
///
/// Wall time is measured whether or not a recorder is installed; only the
/// *recording* is conditional.
pub struct SpanGuard {
    recorder: Option<Arc<dyn Recorder>>,
    id: SpanId,
    prev: SpanId,
    start: Instant,
    closed: bool,
    /// Guards restore thread-local state on drop; keep them on one thread.
    _not_send: PhantomData<*const ()>,
}

impl SpanGuard {
    fn open(parent: SpanId, name: String) -> Self {
        let recorder = recorder();
        let (id, prev) = match &recorder {
            Some(r) => {
                let id = r.span_enter(parent, name);
                let prev = CURRENT.with(|c| c.replace(id));
                (id, prev)
            }
            None => (0, 0),
        };
        SpanGuard {
            recorder,
            id,
            prev,
            start: Instant::now(),
            closed: false,
            _not_send: PhantomData,
        }
    }

    /// This span as an explicit parent for children created in closures
    /// that may run on other threads.
    #[must_use]
    pub fn ctx(&self) -> SpanCtx {
        SpanCtx(self.id)
    }

    fn close(&mut self) -> f64 {
        let elapsed = self.start.elapsed().as_secs_f64();
        if !self.closed {
            self.closed = true;
            if let Some(r) = self.recorder.take() {
                r.span_exit(self.id, self.start.elapsed().as_nanos() as u64);
                CURRENT.with(|c| c.set(self.prev));
            }
        }
        elapsed
    }

    /// Close the span now and return its wall time in seconds.
    #[must_use]
    pub fn finish(mut self) -> f64 {
        self.close()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let _ = self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_instrumentation_is_inert() {
        assert!(recorder().is_none() || recording());
        counter_add("noop.counter", 5);
        observe("noop.histogram", 1.0);
        gauge_set("noop.gauge", 2.0);
        let g = span("noop.span");
        let inner = g.ctx().span("noop.child");
        let secs = inner.finish();
        assert!(secs >= 0.0, "wall time is measured even when disabled");
        assert!(g.finish() >= secs);
    }

    #[test]
    fn with_recorder_scopes_to_the_thread_and_restores() {
        let rec = Arc::new(InMemoryRecorder::new());
        let before = recording();
        with_recorder(rec.clone(), || {
            assert!(recording());
            counter_add("scoped.counter", 3);
            let s = span("scoped.span");
            let _ = s.finish();
        });
        assert_eq!(recording(), before, "ACTIVE must be restored");
        let snap = rec.metrics_snapshot();
        assert_eq!(snap.counter("scoped.counter"), 3);
        assert_eq!(rec.span_records().len(), 1);
    }

    #[test]
    fn with_recorder_restores_after_panic() {
        let rec = Arc::new(InMemoryRecorder::new());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_recorder(rec, || {
                let _s = span("doomed");
                panic!("boom");
            });
        }));
        assert!(result.is_err());
        assert!(recorder().is_none(), "local recorder must be cleared");
        counter_add("after.panic", 1); // must be a no-op, not a poisoned lock
    }

    #[test]
    fn global_install_reaches_other_threads() {
        // Serialize against any other test touching the global slot.
        static GLOBAL_TEST: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _lock = GLOBAL_TEST.lock().unwrap();
        let rec = Arc::new(InMemoryRecorder::new());
        install(rec.clone());
        let parent = span("cross-thread-parent");
        let ctx = parent.ctx();
        std::thread::spawn(move || {
            let _child = ctx.span("cross-thread-child");
        })
        .join()
        .unwrap();
        drop(parent);
        uninstall();
        assert!(recorder().is_none());
        let records = rec.span_records();
        assert_eq!(records.len(), 2);
        let child = records.iter().find(|r| r.name.contains("child")).unwrap();
        let parent = records.iter().find(|r| r.name.contains("parent")).unwrap();
        assert_eq!(
            child.parent, parent.id,
            "explicit ctx must parent across threads"
        );
    }
}
