//! The run manifest: one JSON document capturing everything a study run
//! did — the provenance record a Cornebize-style reproduction needs.
//!
//! Built from an [`InMemoryRecorder`] at study end, serialized with the
//! workspace's deterministic JSON shims, and consumed by
//! `metasim obs summarize`, the `MS4xx` audit rules, and the
//! `BENCH_study.json` writer.

use serde::{Deserialize, Serialize};

use crate::recorder::{InMemoryRecorder, SpanRecord};
use crate::MetricsSnapshot;

/// Version of the manifest JSON schema. Bump on any breaking shape change;
/// `MS401` rejects manifests from other versions. v2 added the log-scaled
/// latency histograms (`metrics.hdr_histograms`).
pub const MANIFEST_SCHEMA_VERSION: u32 = 2;

/// How many spans the `slowest_spans` leaderboard keeps.
pub const SLOWEST_SPAN_COUNT: usize = 10;

/// Identity and cache context the recorder cannot know by itself; supplied
/// by the caller when building the manifest.
#[derive(Debug, Clone, Default)]
pub struct ManifestMeta {
    /// Producing tool, e.g. `metasim 0.1.0`.
    pub tool: String,
    /// Content digest of the study configuration (the fleet's store key).
    pub config_digest: String,
    /// Whether the study result came from the persistent cache.
    pub loaded_from_cache: bool,
    /// State of the persistent artifact store, when one was in use.
    pub cache: Option<CacheSummary>,
}

/// Snapshot of the persistent artifact store plus this session's traffic.
///
/// Deliberately a plain struct (not `metasim-cache` types): the cache crate
/// depends on this one for counters, so the manifest cannot depend back on
/// it without a cycle.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CacheSummary {
    /// Store root directory.
    pub root: String,
    /// Store schema version.
    pub schema: u32,
    /// Total artifacts on disk.
    pub entries: usize,
    /// Total bytes on disk.
    pub bytes: u64,
    /// Per-kind artifact counts, sorted by kind.
    pub kinds: Vec<(String, usize)>,
    /// Cache hits served during this run.
    pub session_hits: u64,
    /// Cache misses (artifact absent) during this run.
    pub session_misses: u64,
    /// Corrupt or invalid artifacts evicted during this run.
    pub session_evictions: u64,
}

/// One top-level pipeline phase and its wall time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSummary {
    /// Phase name with the `phase:` prefix stripped, e.g. `preflight`.
    pub name: String,
    /// Wall time in seconds.
    pub seconds: f64,
    /// Number of spans recorded underneath this phase (any depth).
    pub spans: usize,
}

/// One node of the span tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanNode {
    /// Span name, e.g. `machine:lemieux`.
    pub name: String,
    /// Seconds from the recorder's epoch to span entry.
    pub start_seconds: f64,
    /// Wall time in seconds (0 if the span never closed).
    pub seconds: f64,
    /// Child spans, in entry order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Nodes in this subtree, excluding `self`.
    #[must_use]
    pub fn descendant_count(&self) -> usize {
        self.children.iter().map(|c| 1 + c.descendant_count()).sum()
    }
}

/// One leaderboard entry: a span and its wall time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlowSpan {
    /// Span name.
    pub name: String,
    /// Wall time in seconds.
    pub seconds: f64,
}

/// The complete provenance record of one study run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Manifest schema version ([`MANIFEST_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Producing tool, e.g. `metasim 0.1.0`.
    pub tool: String,
    /// Content digest of the study configuration.
    pub config_digest: String,
    /// Whether the result was served from the persistent cache.
    pub loaded_from_cache: bool,
    /// End-to-end wall time: the duration of the root `study` span.
    pub total_seconds: f64,
    /// Top-level phases in execution order.
    pub phases: Vec<PhaseSummary>,
    /// Persistent store state, when a store was in use.
    pub cache: Option<CacheSummary>,
    /// The full span forest, in entry order.
    pub span_tree: Vec<SpanNode>,
    /// The [`SLOWEST_SPAN_COUNT`] slowest leaf-level spans (structural
    /// `study`/`phase:*` containers excluded — they would always win).
    pub slowest_spans: Vec<SlowSpan>,
    /// Snapshot of every counter, gauge, and histogram.
    pub metrics: MetricsSnapshot,
}

const NS: f64 = 1e-9;

fn build_tree(records: &[SpanRecord]) -> Vec<SpanNode> {
    // ids are 1-based log indices, so children always follow their parent;
    // one forward pass with an id → tree-position map builds the forest.
    fn place<'a>(roots: &'a mut Vec<SpanNode>, path: &[usize]) -> &'a mut Vec<SpanNode> {
        let mut nodes = roots;
        for &i in path {
            nodes = &mut nodes[i].children;
        }
        nodes
    }

    let mut roots: Vec<SpanNode> = Vec::new();
    // id → path of child indices from the root set to that span's node.
    let mut paths: Vec<Option<Vec<usize>>> = vec![None; records.len() + 1];
    for r in records {
        let parent_path = usize::try_from(r.parent)
            .ok()
            .and_then(|p| paths.get(p).cloned().flatten());
        let parent_path = match (r.parent, parent_path) {
            (0, _) => Vec::new(),
            (_, Some(p)) => p,
            // Parent id unknown (foreign recorder, dropped record): treat
            // as a root rather than losing the span.
            (_, None) => Vec::new(),
        };
        let siblings = place(&mut roots, &parent_path);
        let mut path = parent_path;
        path.push(siblings.len());
        siblings.push(SpanNode {
            name: r.name.clone(),
            start_seconds: r.start_ns as f64 * NS,
            seconds: r.dur_ns.unwrap_or(0) as f64 * NS,
            children: Vec::new(),
        });
        if let Some(slot) = paths.get_mut(usize::try_from(r.id).unwrap_or(0)) {
            *slot = Some(path);
        }
    }
    roots
}

/// Is this span a structural container rather than a unit of work?
pub(crate) fn is_structural(name: &str) -> bool {
    name == "study" || name.starts_with("phase:")
}

impl RunManifest {
    /// Assemble the manifest from everything `recorder` captured plus the
    /// caller-supplied identity in `meta`.
    #[must_use]
    pub fn build(recorder: &InMemoryRecorder, meta: ManifestMeta) -> Self {
        let records = recorder.span_records();
        let span_tree = build_tree(&records);

        let total_seconds = span_tree
            .iter()
            .filter(|n| n.name == "study")
            .map(|n| n.seconds)
            .sum();

        let phases = span_tree
            .iter()
            .filter(|n| n.name == "study")
            .flat_map(|study| study.children.iter())
            .filter(|n| n.name.starts_with("phase:"))
            .map(|n| PhaseSummary {
                name: n.name.trim_start_matches("phase:").to_string(),
                seconds: n.seconds,
                spans: n.descendant_count(),
            })
            .collect();

        let mut slowest: Vec<SlowSpan> = records
            .iter()
            .filter(|r| !is_structural(&r.name))
            .filter_map(|r| {
                r.dur_ns.map(|d| SlowSpan {
                    name: r.name.clone(),
                    seconds: d as f64 * NS,
                })
            })
            .collect();
        slowest.sort_by(|a, b| {
            b.seconds
                .partial_cmp(&a.seconds)
                .expect("span durations are finite")
                .then_with(|| a.name.cmp(&b.name))
        });
        slowest.truncate(SLOWEST_SPAN_COUNT);

        RunManifest {
            schema_version: MANIFEST_SCHEMA_VERSION,
            tool: meta.tool,
            config_digest: meta.config_digest,
            loaded_from_cache: meta.loaded_from_cache,
            total_seconds,
            phases,
            cache: meta.cache,
            span_tree,
            slowest_spans: slowest,
            metrics: recorder.metrics_snapshot(),
        }
    }

    /// Wall time of the named phase (without the `phase:` prefix), if it ran.
    #[must_use]
    pub fn phase_seconds(&self, name: &str) -> Option<f64> {
        self.phases
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.seconds)
    }

    /// Serialize to compact JSON.
    ///
    /// # Errors
    /// A non-finite number somewhere in the metrics (JSON has no NaN).
    pub fn to_json(&self) -> Result<String, String> {
        serde_json::to_string(self).map_err(|e| format!("cannot serialize manifest: {e}"))
    }

    /// Serialize to pretty-printed JSON.
    ///
    /// # Errors
    /// A non-finite number somewhere in the metrics (JSON has no NaN).
    pub fn to_json_pretty(&self) -> Result<String, String> {
        serde_json::to_string_pretty(self).map_err(|e| format!("cannot serialize manifest: {e}"))
    }

    /// Parse a manifest back from JSON text.
    ///
    /// # Errors
    /// Malformed JSON or a JSON shape that is not a manifest.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("invalid manifest: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    fn sample_recorder() -> InMemoryRecorder {
        let rec = InMemoryRecorder::new();
        let study = rec.span_enter(0, "study".into());
        let pre = rec.span_enter(study, "phase:preflight".into());
        rec.span_exit(pre, 2_000_000);
        let gt = rec.span_enter(study, "phase:ground-truth".into());
        let app = rec.span_enter(gt, "app:hycom-large".into());
        let m = rec.span_enter(app, "machine:lemieux".into());
        rec.span_exit(m, 5_000_000);
        rec.span_exit(app, 6_000_000);
        rec.span_exit(gt, 7_000_000);
        rec.span_exit(study, 10_000_000);
        rec.counter_add("cache.hit.trace", 4);
        rec.gauge_set("study.observations", 150.0);
        rec.observe("study.signed_error_pct", 12.0);
        rec
    }

    fn sample_meta() -> ManifestMeta {
        ManifestMeta {
            tool: "metasim 0.1.0".into(),
            config_digest: "abcd1234".into(),
            loaded_from_cache: false,
            cache: Some(CacheSummary {
                root: "/tmp/cache".into(),
                schema: 1,
                entries: 3,
                bytes: 1024,
                kinds: vec![("trace".into(), 3)],
                session_hits: 4,
                session_misses: 1,
                session_evictions: 0,
            }),
        }
    }

    #[test]
    fn build_derives_phases_total_and_slowest() {
        let m = RunManifest::build(&sample_recorder(), sample_meta());
        assert_eq!(m.schema_version, MANIFEST_SCHEMA_VERSION);
        assert!((m.total_seconds - 0.010).abs() < 1e-12);
        let names: Vec<&str> = m.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["preflight", "ground-truth"]);
        assert_eq!(m.phases[1].spans, 2, "app + machine under ground-truth");
        assert_eq!(m.phase_seconds("preflight"), Some(0.002));
        // Structural spans never make the leaderboard; the app span (6ms)
        // beats the machine span (5ms).
        assert_eq!(m.slowest_spans[0].name, "app:hycom-large");
        assert_eq!(m.slowest_spans[1].name, "machine:lemieux");
        assert_eq!(m.metrics.counter("cache.hit.trace"), 4);
    }

    #[test]
    fn tree_preserves_nesting_and_order() {
        let m = RunManifest::build(&sample_recorder(), sample_meta());
        assert_eq!(m.span_tree.len(), 1);
        let study = &m.span_tree[0];
        assert_eq!(study.name, "study");
        assert_eq!(study.children.len(), 2);
        assert_eq!(study.children[0].name, "phase:preflight");
        let gt = &study.children[1];
        assert_eq!(gt.children[0].name, "app:hycom-large");
        assert_eq!(gt.children[0].children[0].name, "machine:lemieux");
        assert_eq!(study.descendant_count(), 4);
    }

    #[test]
    fn orphan_spans_become_roots() {
        let rec = InMemoryRecorder::new();
        let id = rec.span_enter(999, "orphan".into());
        rec.span_exit(id, 1_000);
        let m = RunManifest::build(&rec, ManifestMeta::default());
        assert_eq!(m.span_tree.len(), 1);
        assert_eq!(m.span_tree[0].name, "orphan");
        assert_eq!(m.total_seconds, 0.0, "no study root span");
    }

    #[test]
    fn manifest_round_trips_through_json_identically() {
        let m = RunManifest::build(&sample_recorder(), sample_meta());
        for text in [m.to_json().unwrap(), m.to_json_pretty().unwrap()] {
            let back = RunManifest::from_json(&text).expect("parses");
            assert_eq!(back, m, "serialize -> parse must be the identity");
        }
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(RunManifest::from_json("not json").is_err());
        assert!(RunManifest::from_json("{\"schema_version\": 1}").is_err());
    }
}
