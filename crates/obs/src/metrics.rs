//! Named counters, gauges, and fixed-bucket histograms.
//!
//! The registry is write-hot and read-once: instrumented code bumps atomics
//! from many threads during a study, then the manifest builder takes one
//! [`MetricsSnapshot`] at the end. Names are created on first touch, so
//! instrumented crates never need to pre-declare anything; histograms may
//! optionally be registered up front to pin their bucket bounds.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use serde::{Deserialize, Serialize};

/// Default histogram bounds (seconds-flavoured, log-spaced): instrumented
/// code that observes into an unregistered name gets these.
pub const DEFAULT_BOUNDS: &[f64] = &[
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 100.0,
];

/// Fixed-bucket histogram. Bucket `i` counts observations `<= bounds[i]`;
/// the final bucket (index `bounds.len()`) is the overflow bucket.
#[derive(Debug)]
struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    /// Running sum of observed values, stored as `f64` bits and updated via
    /// compare-and-swap so `mean()` stays exact under concurrency.
    sum_bits: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        let mut bounds = bounds.to_vec();
        bounds.sort_by(|a, b| a.partial_cmp(b).expect("finite histogram bounds"));
        bounds.dedup();
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            buckets,
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }

    fn observe(&self, value: f64) {
        let idx = self.bounds.partition_point(|&b| value > b);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        let _ = self
            .sum_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + value).to_bits())
            });
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
        }
    }
}

/// Point-in-time copy of one histogram: `counts.len() == bounds.len() + 1`,
/// the last slot being the overflow bucket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Ascending bucket upper bounds (inclusive).
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts; one longer than `bounds`.
    pub counts: Vec<u64>,
    /// Sum of every observed value.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean observed value, or `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum / n as f64)
    }
}

/// Deterministic point-in-time copy of the whole registry: every list is
/// sorted by name, so equal registry contents snapshot to equal values —
/// the property the manifest round-trip test leans on.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// `(name, value)` counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// `(name, snapshot)` histograms, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Value of the named counter (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Value of the named gauge, if set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The named histogram, if any observations were recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Sum of all counters whose name starts with `prefix` — how the cache
    /// summary totals `cache.hit.<kind>` across artifact kinds.
    #[must_use]
    pub fn counter_prefix_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }
}

/// The live registry: name → atomic cell, created on first touch.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<HashMap<String, Arc<AtomicU64>>>,
    /// Gauges store `f64` bits.
    gauges: RwLock<HashMap<String, Arc<AtomicU64>>>,
    histograms: RwLock<HashMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// Empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn cell(map: &RwLock<HashMap<String, Arc<AtomicU64>>>, name: &str) -> Arc<AtomicU64> {
        if let Some(c) = map.read().expect("metrics lock").get(name) {
            return Arc::clone(c);
        }
        let mut w = map.write().expect("metrics lock");
        Arc::clone(w.entry(name.to_string()).or_default())
    }

    /// Add `delta` to the named counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        Self::cell(&self.counters, name).fetch_add(delta, Ordering::Relaxed);
    }

    /// Set the named gauge.
    pub fn gauge_set(&self, name: &str, value: f64) {
        Self::cell(&self.gauges, name).store(value.to_bits(), Ordering::Relaxed);
    }

    /// Pin the bucket bounds of the named histogram before any
    /// observations; later `observe` calls reuse them. Re-registering an
    /// existing name keeps the original bounds.
    pub fn register_histogram(&self, name: &str, bounds: &[f64]) {
        let mut w = self.histograms.write().expect("metrics lock");
        w.entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new(bounds)));
    }

    /// Record one observation into the named histogram, creating it with
    /// [`DEFAULT_BOUNDS`] if unregistered.
    pub fn observe(&self, name: &str, value: f64) {
        // The read guard must be fully dropped before falling back to the
        // write lock: an `if let` scrutinee's temporary lives to the end of
        // the whole if/else, which would self-deadlock the slow path.
        let existing = self
            .histograms
            .read()
            .expect("metrics lock")
            .get(name)
            .map(Arc::clone);
        let hist = match existing {
            Some(h) => h,
            None => {
                let mut w = self.histograms.write().expect("metrics lock");
                Arc::clone(
                    w.entry(name.to_string())
                        .or_insert_with(|| Arc::new(Histogram::new(DEFAULT_BOUNDS))),
                )
            }
        };
        hist.observe(value);
    }

    /// Deterministic snapshot: all three maps, sorted by name.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<(String, u64)> = self
            .counters
            .read()
            .expect("metrics lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        counters.sort();
        let mut gauges: Vec<(String, f64)> = self
            .gauges
            .read()
            .expect("metrics lock")
            .iter()
            .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
            .collect();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        let mut histograms: Vec<(String, HistogramSnapshot)> = self
            .histograms
            .read()
            .expect("metrics lock")
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let reg = MetricsRegistry::new();
        reg.counter_add("a", 2);
        reg.counter_add("a", 3);
        reg.counter_add("b", 1);
        reg.gauge_set("g", 1.5);
        reg.gauge_set("g", 2.5);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a"), 5);
        assert_eq!(snap.counter("b"), 1);
        assert_eq!(snap.counter("absent"), 0);
        assert_eq!(snap.gauge("g"), Some(2.5));
        assert_eq!(snap.counters, vec![("a".into(), 5), ("b".into(), 1)]);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper() {
        let reg = MetricsRegistry::new();
        reg.register_histogram("h", &[1.0, 2.0, 4.0]);
        // On-boundary values land in the bucket they bound; beyond-last
        // goes to overflow.
        for v in [0.5, 1.0, 1.0001, 2.0, 3.9, 4.0, 4.0001, 100.0] {
            reg.observe("h", v);
        }
        let snap = reg.snapshot();
        let h = snap.histogram("h").unwrap();
        assert_eq!(h.bounds, vec![1.0, 2.0, 4.0]);
        assert_eq!(h.counts, vec![2, 2, 2, 2]);
        assert_eq!(h.count(), 8);
        let expected: f64 = 0.5 + 1.0 + 1.0001 + 2.0 + 3.9 + 4.0 + 4.0001 + 100.0;
        assert!((h.sum - expected).abs() < 1e-12);
        assert!((h.mean().unwrap() - expected / 8.0).abs() < 1e-12);
    }

    #[test]
    fn unregistered_histogram_uses_default_bounds() {
        let reg = MetricsRegistry::new();
        reg.observe("lazy", 0.25);
        let snap = reg.snapshot();
        let h = snap.histogram("lazy").unwrap();
        assert_eq!(h.bounds, DEFAULT_BOUNDS.to_vec());
        assert_eq!(h.counts.len(), DEFAULT_BOUNDS.len() + 1);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn register_keeps_first_bounds_and_dedups() {
        let reg = MetricsRegistry::new();
        reg.register_histogram("h", &[2.0, 1.0, 2.0]);
        reg.register_histogram("h", &[99.0]);
        reg.observe("h", 1.5);
        let snap = reg.snapshot();
        assert_eq!(snap.histogram("h").unwrap().bounds, vec![1.0, 2.0]);
    }

    #[test]
    fn prefix_sum_totals_counter_families() {
        let reg = MetricsRegistry::new();
        reg.counter_add("cache.hit.probes", 2);
        reg.counter_add("cache.hit.trace", 3);
        reg.counter_add("cache.miss.trace", 1);
        let snap = reg.snapshot();
        assert_eq!(snap.counter_prefix_sum("cache.hit."), 5);
        assert_eq!(snap.counter_prefix_sum("cache.miss."), 1);
    }

    #[test]
    fn empty_histogram_has_no_mean() {
        let h = HistogramSnapshot {
            bounds: vec![1.0],
            counts: vec![0, 0],
            sum: 0.0,
        };
        assert_eq!(h.mean(), None);
    }
}
