//! Named counters, gauges, fixed-bucket histograms, and log-scaled
//! latency histograms.
//!
//! The registry is write-hot and read-once: instrumented code bumps atomics
//! from many threads during a study, then the manifest builder takes one
//! [`MetricsSnapshot`] at the end. Names are created on first touch, so
//! instrumented crates never need to pre-declare anything; histograms may
//! optionally be registered up front to pin their bucket bounds.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use serde::{Deserialize, Serialize};

use crate::hdr::{HdrHistogram, HdrSnapshot};

/// Default histogram bounds (seconds-flavoured, log-spaced): instrumented
/// code that observes into an unregistered name gets these.
pub const DEFAULT_BOUNDS: &[f64] = &[
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 100.0,
];

/// Fixed-bucket histogram. Bucket `i` counts observations `<= bounds[i]`;
/// the final bucket (index `bounds.len()`) is the overflow bucket.
#[derive(Debug)]
struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    /// Running sum of observed values, stored as `f64` bits and updated via
    /// compare-and-swap so `mean()` stays exact under concurrency.
    sum_bits: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        let mut bounds = bounds.to_vec();
        bounds.sort_by(|a, b| a.partial_cmp(b).expect("finite histogram bounds"));
        bounds.dedup();
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            buckets,
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }

    fn observe(&self, value: f64) {
        let idx = self.bounds.partition_point(|&b| value > b);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        let _ = self
            .sum_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + value).to_bits())
            });
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
        }
    }
}

/// Point-in-time copy of one histogram: `counts.len() == bounds.len() + 1`,
/// the last slot being the overflow bucket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Ascending bucket upper bounds (inclusive).
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts; one longer than `bounds`.
    pub counts: Vec<u64>,
    /// Sum of every observed value.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean observed value, or `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum / n as f64)
    }
}

/// Deterministic point-in-time copy of the whole registry: every list is
/// sorted by name, so equal registry contents snapshot to equal values —
/// the property the manifest round-trip test leans on.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// `(name, value)` counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// `(name, snapshot)` histograms, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// `(name, snapshot)` log-scaled latency histograms, sorted by name.
    pub hdr_histograms: Vec<(String, HdrSnapshot)>,
}

impl MetricsSnapshot {
    /// Value of the named counter (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Value of the named gauge, if set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The named histogram, if any observations were recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// The named log-scaled latency histogram, if any observations were
    /// recorded.
    #[must_use]
    pub fn hdr(&self, name: &str) -> Option<&HdrSnapshot> {
        self.hdr_histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Sum of all counters whose name starts with `prefix` — how the cache
    /// summary totals `cache.hit.<kind>` across artifact kinds.
    #[must_use]
    pub fn counter_prefix_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }
}

/// Find-or-create in a name → `Arc<T>` map with a read-mostly locking
/// discipline: try under the shared read lock first (the hot path — every
/// metric after its first touch), then upgrade to the write lock and insert
/// via `make` only on a miss. Losing an upgrade race is fine: `or_insert_with`
/// keeps the winner's value.
///
/// The read guard must be fully dropped before falling back to the write
/// lock: an `if let` scrutinee's temporary lives to the end of the whole
/// if/else, which would self-deadlock the slow path — hence the two-step
/// `map(Arc::clone)` / `match`.
fn get_or_register<T>(
    map: &RwLock<HashMap<String, Arc<T>>>,
    name: &str,
    make: impl FnOnce() -> T,
) -> Arc<T> {
    let existing = map.read().expect("metrics lock").get(name).map(Arc::clone);
    match existing {
        Some(v) => v,
        None => {
            let mut w = map.write().expect("metrics lock");
            Arc::clone(
                w.entry(name.to_string())
                    .or_insert_with(|| Arc::new(make())),
            )
        }
    }
}

/// The live registry: name → atomic cell, created on first touch.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<HashMap<String, Arc<AtomicU64>>>,
    /// Gauges store `f64` bits.
    gauges: RwLock<HashMap<String, Arc<AtomicU64>>>,
    histograms: RwLock<HashMap<String, Arc<Histogram>>>,
    hdr_histograms: RwLock<HashMap<String, Arc<HdrHistogram>>>,
}

impl MetricsRegistry {
    /// Empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to the named counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        get_or_register(&self.counters, name, AtomicU64::default)
            .fetch_add(delta, Ordering::Relaxed);
    }

    /// Set the named gauge.
    pub fn gauge_set(&self, name: &str, value: f64) {
        get_or_register(&self.gauges, name, AtomicU64::default)
            .store(value.to_bits(), Ordering::Relaxed);
    }

    /// Pin the bucket bounds of the named histogram before any
    /// observations; later `observe` calls reuse them. Re-registering an
    /// existing name keeps the original bounds.
    pub fn register_histogram(&self, name: &str, bounds: &[f64]) {
        let _ = get_or_register(&self.histograms, name, || Histogram::new(bounds));
    }

    /// Record one observation into the named histogram, creating it with
    /// [`DEFAULT_BOUNDS`] if unregistered.
    pub fn observe(&self, name: &str, value: f64) {
        get_or_register(&self.histograms, name, || Histogram::new(DEFAULT_BOUNDS)).observe(value);
    }

    /// Record one observation into the named log-scaled latency histogram,
    /// creating it on first touch. The geometry is crate-wide
    /// ([`crate::hdr`]), so there is nothing to pre-register.
    pub fn hdr_observe(&self, name: &str, value: f64) {
        get_or_register(&self.hdr_histograms, name, HdrHistogram::new).observe(value);
    }

    /// Deterministic snapshot: all three maps, sorted by name.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<(String, u64)> = self
            .counters
            .read()
            .expect("metrics lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        counters.sort();
        let mut gauges: Vec<(String, f64)> = self
            .gauges
            .read()
            .expect("metrics lock")
            .iter()
            .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
            .collect();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        let mut histograms: Vec<(String, HistogramSnapshot)> = self
            .histograms
            .read()
            .expect("metrics lock")
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        let mut hdr_histograms: Vec<(String, HdrSnapshot)> = self
            .hdr_histograms
            .read()
            .expect("metrics lock")
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect();
        hdr_histograms.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
            hdr_histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let reg = MetricsRegistry::new();
        reg.counter_add("a", 2);
        reg.counter_add("a", 3);
        reg.counter_add("b", 1);
        reg.gauge_set("g", 1.5);
        reg.gauge_set("g", 2.5);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a"), 5);
        assert_eq!(snap.counter("b"), 1);
        assert_eq!(snap.counter("absent"), 0);
        assert_eq!(snap.gauge("g"), Some(2.5));
        assert_eq!(snap.counters, vec![("a".into(), 5), ("b".into(), 1)]);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper() {
        let reg = MetricsRegistry::new();
        reg.register_histogram("h", &[1.0, 2.0, 4.0]);
        // On-boundary values land in the bucket they bound; beyond-last
        // goes to overflow.
        for v in [0.5, 1.0, 1.0001, 2.0, 3.9, 4.0, 4.0001, 100.0] {
            reg.observe("h", v);
        }
        let snap = reg.snapshot();
        let h = snap.histogram("h").unwrap();
        assert_eq!(h.bounds, vec![1.0, 2.0, 4.0]);
        assert_eq!(h.counts, vec![2, 2, 2, 2]);
        assert_eq!(h.count(), 8);
        let expected: f64 = 0.5 + 1.0 + 1.0001 + 2.0 + 3.9 + 4.0 + 4.0001 + 100.0;
        assert!((h.sum - expected).abs() < 1e-12);
        assert!((h.mean().unwrap() - expected / 8.0).abs() < 1e-12);
    }

    #[test]
    fn unregistered_histogram_uses_default_bounds() {
        let reg = MetricsRegistry::new();
        reg.observe("lazy", 0.25);
        let snap = reg.snapshot();
        let h = snap.histogram("lazy").unwrap();
        assert_eq!(h.bounds, DEFAULT_BOUNDS.to_vec());
        assert_eq!(h.counts.len(), DEFAULT_BOUNDS.len() + 1);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn register_keeps_first_bounds_and_dedups() {
        let reg = MetricsRegistry::new();
        reg.register_histogram("h", &[2.0, 1.0, 2.0]);
        reg.register_histogram("h", &[99.0]);
        reg.observe("h", 1.5);
        let snap = reg.snapshot();
        assert_eq!(snap.histogram("h").unwrap().bounds, vec![1.0, 2.0]);
    }

    #[test]
    fn prefix_sum_totals_counter_families() {
        let reg = MetricsRegistry::new();
        reg.counter_add("cache.hit.probes", 2);
        reg.counter_add("cache.hit.trace", 3);
        reg.counter_add("cache.miss.trace", 1);
        let snap = reg.snapshot();
        assert_eq!(snap.counter_prefix_sum("cache.hit."), 5);
        assert_eq!(snap.counter_prefix_sum("cache.miss."), 1);
    }

    #[test]
    fn get_or_register_reuses_one_cell_under_contention() {
        // The dedup helper behind counters, gauges, and both histogram
        // families: every thread racing the first touch of a name must end
        // up on the same cell, with no observation lost.
        let reg = std::sync::Arc::new(MetricsRegistry::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let reg = std::sync::Arc::clone(&reg);
                s.spawn(move || {
                    for i in 0..500 {
                        reg.counter_add("contended", 1);
                        reg.observe("contended.hist", f64::from(i));
                        reg.hdr_observe("contended.hdr", 1e-3);
                    }
                });
            }
        });
        let snap = reg.snapshot();
        assert_eq!(snap.counter("contended"), 8 * 500);
        assert_eq!(snap.histogram("contended.hist").unwrap().count(), 8 * 500);
        assert_eq!(snap.hdr("contended.hdr").unwrap().count(), 8 * 500);

        // Identity, not just totals: a repeat lookup is the same Arc.
        let a = get_or_register(&reg.counters, "contended", AtomicU64::default);
        let b = get_or_register(&reg.counters, "contended", AtomicU64::default);
        assert!(std::sync::Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn hdr_histograms_snapshot_sorted_with_quantiles() {
        let reg = MetricsRegistry::new();
        reg.hdr_observe("lat.b", 0.002);
        reg.hdr_observe("lat.a", 0.5);
        reg.hdr_observe("lat.a", 0.5);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap
            .hdr_histograms
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert_eq!(names, ["lat.a", "lat.b"], "sorted by name");
        let a = snap.hdr("lat.a").unwrap();
        assert_eq!(a.count(), 2);
        assert_eq!(a.p50(), Some(0.5), "exact via [low, high] clamp");
        assert!(snap.hdr("absent").is_none());
    }

    #[test]
    fn empty_histogram_has_no_mean() {
        let h = HistogramSnapshot {
            bounds: vec![1.0],
            counts: vec![0, 0],
            sum: 0.0,
        };
        assert_eq!(h.mean(), None);
    }
}
