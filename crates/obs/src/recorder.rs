//! The [`Recorder`] sink trait, its in-memory implementation, and the
//! per-worker span buffer that keeps parallel recording contention-free.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::metrics::{MetricsRegistry, MetricsSnapshot};

/// Identifies a span within one recorder. `0` is reserved for "no span"
/// (the root context); real ids start at 1.
pub type SpanId = u64;

/// First id of the worker-local span id space. A [`WorkerSpanBuffer`]
/// allocates ids at `WORKER_SPAN_ID_BASE + local index` so buffered spans
/// can reference each other (and canonical ids below the base) before the
/// merge assigns them real ids. `1 << 48` leaves room for ~2.8e14 canonical
/// spans — far beyond any run — while staying recognizable in a debugger.
pub const WORKER_SPAN_ID_BASE: SpanId = 1 << 48;

/// One recorded span: who opened it, under what, when, and for how long.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// This span's id (index into the recorder's log, starting at 1).
    pub id: SpanId,
    /// Parent span id, or 0 for a tree root.
    pub parent: SpanId,
    /// Hierarchical name, e.g. `phase:ground-truth` or `metric:#7`.
    pub name: String,
    /// Nanoseconds since the recorder's epoch at span entry.
    pub start_ns: u64,
    /// Wall time in nanoseconds; `None` while the span is still open.
    pub dur_ns: Option<u64>,
}

/// Where instrumentation events land. Implementations must be thread-safe:
/// the study's parallel loops record from whatever thread runs them.
pub trait Recorder: Send + Sync {
    /// Open a span under `parent` (0 = root) and return its id.
    fn span_enter(&self, parent: SpanId, name: String) -> SpanId;
    /// Close the span, recording its wall time.
    fn span_exit(&self, id: SpanId, dur_ns: u64);
    /// Add `delta` to a named counter.
    fn counter_add(&self, name: &str, delta: u64);
    /// Set a named gauge.
    fn gauge_set(&self, name: &str, value: f64);
    /// Record a fixed-bucket histogram observation.
    fn observe(&self, name: &str, value: f64);
    /// Record a log-scaled latency histogram observation
    /// ([`crate::hdr`]). Defaults to a no-op so bare span sinks (e.g. a
    /// streaming trace writer) need not carry a metrics registry.
    fn observe_hdr(&self, name: &str, value: f64) {
        let _ = (name, value);
    }
    /// Nanoseconds since this recorder's epoch — what buffered spans stamp
    /// as their `start_ns` so merged logs share one clock. Defaults to 0
    /// for sinks with no time base.
    fn now_ns(&self) -> u64 {
        0
    }
    /// Adopt a batch of spans recorded elsewhere (a [`WorkerSpanBuffer`]),
    /// in the batch's order. Ids at or above [`WORKER_SPAN_ID_BASE`]
    /// reference earlier spans *within the batch* and must be remapped;
    /// ids below the base are canonical and pass through. The default
    /// replays the batch through `span_enter`/`span_exit`, which preserves
    /// structure but restamps entry times; recorders with a clock should
    /// override to keep the original `start_ns`.
    fn merge_spans(&self, spans: Vec<SpanRecord>) {
        let mut ids: HashMap<SpanId, SpanId> = HashMap::with_capacity(spans.len());
        for s in spans {
            let parent = if s.parent >= WORKER_SPAN_ID_BASE {
                ids.get(&s.parent).copied().unwrap_or(0)
            } else {
                s.parent
            };
            let id = self.span_enter(parent, s.name);
            ids.insert(s.id, id);
            if let Some(dur) = s.dur_ns {
                self.span_exit(id, dur);
            }
        }
    }
}

/// A per-worker span buffer: the contention-free recording path under
/// `study --jobs N`.
///
/// Without it, every span a worker opens or closes takes the shared
/// recorder's log mutex — N workers opening ~90 prediction-cell spans each
/// serialize on that one lock. The buffer instead gives each worker a
/// private log (its mutex is uncontended: only the owning worker touches
/// it) and forwards metrics straight through (those are lock-free atomics
/// in the registry). At shard close the executor calls [`flush`], which
/// hands the whole batch to the inner recorder's `merge_spans` in one lock
/// acquisition — and because the executor flushes buffers in shard-index
/// order after all workers join, the merged log is *canonical*: the same
/// shard layout yields the same log order regardless of which worker
/// finished first.
///
/// [`flush`]: WorkerSpanBuffer::flush
pub struct WorkerSpanBuffer {
    inner: Arc<dyn Recorder>,
    spans: Mutex<Vec<SpanRecord>>,
}

impl WorkerSpanBuffer {
    /// A fresh buffer forwarding metrics (and eventually spans) to `inner`.
    #[must_use]
    pub fn new(inner: Arc<dyn Recorder>) -> Self {
        WorkerSpanBuffer {
            inner,
            spans: Mutex::new(Vec::new()),
        }
    }

    /// Hand every buffered span to the inner recorder in recorded order.
    /// Call after the worker has finished (its spans closed); open spans
    /// merge as never-closed records.
    pub fn flush(&self) {
        let spans = std::mem::take(&mut *self.spans.lock().expect("worker span buffer"));
        if !spans.is_empty() {
            self.inner.merge_spans(spans);
        }
    }

    /// Spans buffered and not yet flushed (diagnostics/tests).
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.spans.lock().expect("worker span buffer").len()
    }
}

impl Recorder for WorkerSpanBuffer {
    fn span_enter(&self, parent: SpanId, name: String) -> SpanId {
        let start_ns = self.inner.now_ns();
        let mut buf = self.spans.lock().expect("worker span buffer");
        let id = WORKER_SPAN_ID_BASE + buf.len() as SpanId;
        buf.push(SpanRecord {
            id,
            parent,
            name,
            start_ns,
            dur_ns: None,
        });
        id
    }

    fn span_exit(&self, id: SpanId, dur_ns: u64) {
        if let Some(i) = id.checked_sub(WORKER_SPAN_ID_BASE) {
            let mut buf = self.spans.lock().expect("worker span buffer");
            if let Some(rec) = buf.get_mut(usize::try_from(i).unwrap_or(usize::MAX)) {
                rec.dur_ns = Some(dur_ns);
            }
        } else {
            // A canonical id: the span was opened outside this buffer.
            self.inner.span_exit(id, dur_ns);
        }
    }

    fn counter_add(&self, name: &str, delta: u64) {
        self.inner.counter_add(name, delta);
    }

    fn gauge_set(&self, name: &str, value: f64) {
        self.inner.gauge_set(name, value);
    }

    fn observe(&self, name: &str, value: f64) {
        self.inner.observe(name, value);
    }

    fn observe_hdr(&self, name: &str, value: f64) {
        self.inner.observe_hdr(name, value);
    }

    fn now_ns(&self) -> u64 {
        self.inner.now_ns()
    }
}

/// Signed-error buckets (percent) for the per-prediction distribution —
/// asymmetric because the paper's Table 4 errors skew positive (predictions
/// overshooting measured runtime) and under-predictions bottom out at -100%.
pub const SIGNED_ERROR_BOUNDS: &[f64] = &[
    -80.0, -60.0, -40.0, -20.0, -10.0, -5.0, 0.0, 5.0, 10.0, 20.0, 40.0, 60.0, 80.0, 120.0, 200.0,
];

/// Name of the pre-registered signed-error histogram.
pub const SIGNED_ERROR_HISTOGRAM: &str = "study.signed_error_pct";

/// Collects every span and metric in memory; the manifest builder reads it
/// back at study end. Span ids are 1-based indices into an append-only log,
/// so entry order (= id order) is also chronological order.
#[derive(Debug)]
pub struct InMemoryRecorder {
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
    metrics: MetricsRegistry,
}

impl Default for InMemoryRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl InMemoryRecorder {
    /// Fresh recorder whose epoch is "now", with the study's signed-error
    /// histogram pre-registered on its paper-calibrated buckets.
    #[must_use]
    pub fn new() -> Self {
        let metrics = MetricsRegistry::new();
        metrics.register_histogram(SIGNED_ERROR_HISTOGRAM, SIGNED_ERROR_BOUNDS);
        InMemoryRecorder {
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
            metrics,
        }
    }

    /// Copy of the span log, in entry (chronological) order.
    #[must_use]
    pub fn span_records(&self) -> Vec<SpanRecord> {
        self.spans.lock().expect("span log lock").clone()
    }

    /// Deterministic snapshot of all metrics.
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The underlying registry, for pre-registering extra histograms.
    #[must_use]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }
}

impl Recorder for InMemoryRecorder {
    fn span_enter(&self, parent: SpanId, name: String) -> SpanId {
        let start_ns = self.epoch.elapsed().as_nanos() as u64;
        let mut log = self.spans.lock().expect("span log lock");
        let id = log.len() as SpanId + 1;
        log.push(SpanRecord {
            id,
            parent,
            name,
            start_ns,
            dur_ns: None,
        });
        id
    }

    fn span_exit(&self, id: SpanId, dur_ns: u64) {
        let mut log = self.spans.lock().expect("span log lock");
        if let Some(rec) = id
            .checked_sub(1)
            .and_then(|i| log.get_mut(usize::try_from(i).unwrap_or(usize::MAX)))
        {
            rec.dur_ns = Some(dur_ns);
        }
    }

    fn counter_add(&self, name: &str, delta: u64) {
        self.metrics.counter_add(name, delta);
    }

    fn gauge_set(&self, name: &str, value: f64) {
        self.metrics.gauge_set(name, value);
    }

    fn observe(&self, name: &str, value: f64) {
        self.metrics.observe(name, value);
    }

    fn observe_hdr(&self, name: &str, value: f64) {
        self.metrics.hdr_observe(name, value);
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn merge_spans(&self, spans: Vec<SpanRecord>) {
        // One lock acquisition for the whole batch, preserving each span's
        // buffered `start_ns` (stamped against this recorder's epoch via
        // the buffer's `now_ns` passthrough) while assigning canonical
        // log-index ids.
        let mut log = self.spans.lock().expect("span log lock");
        let mut ids: HashMap<SpanId, SpanId> = HashMap::with_capacity(spans.len());
        for mut s in spans {
            let id = log.len() as SpanId + 1;
            ids.insert(s.id, id);
            if s.parent >= WORKER_SPAN_ID_BASE {
                s.parent = ids.get(&s.parent).copied().unwrap_or(0);
            }
            s.id = id;
            log.push(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_ids_are_sequential_and_exit_fills_duration() {
        let rec = InMemoryRecorder::new();
        let a = rec.span_enter(0, "a".into());
        let b = rec.span_enter(a, "b".into());
        assert_eq!((a, b), (1, 2));
        rec.span_exit(b, 50);
        rec.span_exit(a, 100);
        let log = rec.span_records();
        assert_eq!(log[0].name, "a");
        assert_eq!(log[0].dur_ns, Some(100));
        assert_eq!(log[1].parent, a);
        assert_eq!(log[1].dur_ns, Some(50));
        assert!(
            log[1].start_ns >= log[0].start_ns,
            "entry order is time order"
        );
    }

    #[test]
    fn exit_on_unknown_id_is_ignored() {
        let rec = InMemoryRecorder::new();
        rec.span_exit(0, 1);
        rec.span_exit(99, 1);
        assert!(rec.span_records().is_empty());
    }

    #[test]
    fn worker_buffer_merges_canonically_and_preserves_structure() {
        let rec = Arc::new(InMemoryRecorder::new());
        // A canonical span already in the log (the phase span workers
        // parent their shard spans under).
        let phase = rec.span_enter(0, "phase:predictions".into());

        // Two workers record concurrently without touching the shared log.
        let buf_a = WorkerSpanBuffer::new(Arc::clone(&rec) as Arc<dyn Recorder>);
        let buf_b = WorkerSpanBuffer::new(Arc::clone(&rec) as Arc<dyn Recorder>);
        let shard_a = buf_a.span_enter(phase, "shard:0".into());
        let cell_a = buf_a.span_enter(shard_a, "cell:a".into());
        buf_a.span_exit(cell_a, 10);
        buf_a.span_exit(shard_a, 20);
        let shard_b = buf_b.span_enter(phase, "shard:1".into());
        buf_b.span_exit(shard_b, 30);
        buf_b.counter_add("cells", 1);
        buf_b.observe_hdr("lat.shard", 0.5);
        assert!(shard_a >= WORKER_SPAN_ID_BASE, "local ids live above base");
        assert_eq!(rec.span_records().len(), 1, "nothing shared until flush");
        assert_eq!(buf_a.buffered(), 2);

        // Canonical order is flush order (shard index), not finish order.
        buf_a.flush();
        buf_b.flush();
        assert_eq!(buf_a.buffered(), 0);
        let log = rec.span_records();
        let names: Vec<&str> = log.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            ["phase:predictions", "shard:0", "cell:a", "shard:1"],
            "one canonical log in shard order"
        );
        assert_eq!(log[1].parent, phase, "canonical parents pass through");
        assert_eq!(log[2].parent, log[1].id, "local parents are remapped");
        assert_eq!(log[3].parent, phase);
        assert_eq!(log[2].dur_ns, Some(10));
        assert!(
            log[2].start_ns >= log[1].start_ns,
            "buffered start times share the recorder epoch"
        );
        // Metrics forwarded live, not buffered.
        let snap = rec.metrics_snapshot();
        assert_eq!(snap.counter("cells"), 1);
        assert_eq!(snap.hdr("lat.shard").unwrap().count(), 1);
    }

    #[test]
    fn default_merge_replays_through_enter_exit() {
        // A sink that does NOT override merge_spans (or now_ns): the trait
        // default must rebuild the same tree by replaying enter/exit.
        struct ReplaySink(InMemoryRecorder);
        impl Recorder for ReplaySink {
            fn span_enter(&self, parent: SpanId, name: String) -> SpanId {
                self.0.span_enter(parent, name)
            }
            fn span_exit(&self, id: SpanId, dur_ns: u64) {
                self.0.span_exit(id, dur_ns);
            }
            fn counter_add(&self, name: &str, delta: u64) {
                self.0.counter_add(name, delta);
            }
            fn gauge_set(&self, name: &str, value: f64) {
                self.0.gauge_set(name, value);
            }
            fn observe(&self, name: &str, value: f64) {
                self.0.observe(name, value);
            }
        }

        let sink = ReplaySink(InMemoryRecorder::new());
        let batch = vec![
            SpanRecord {
                id: WORKER_SPAN_ID_BASE,
                parent: 0,
                name: "outer".into(),
                start_ns: 0,
                dur_ns: Some(9),
            },
            SpanRecord {
                id: WORKER_SPAN_ID_BASE + 1,
                parent: WORKER_SPAN_ID_BASE,
                name: "inner".into(),
                start_ns: 3,
                dur_ns: Some(5),
            },
        ];
        sink.merge_spans(batch);
        assert_eq!(sink.now_ns(), 0, "default clock has no time base");
        let log = sink.0.span_records();
        assert_eq!(log.len(), 2);
        assert_eq!(log[1].parent, log[0].id, "local parents remapped");
        assert_eq!(log[0].dur_ns, Some(9));
        assert_eq!(log[1].dur_ns, Some(5));
    }

    #[test]
    fn signed_error_histogram_is_preregistered() {
        let rec = InMemoryRecorder::new();
        rec.observe(SIGNED_ERROR_HISTOGRAM, -3.0);
        let snap = rec.metrics_snapshot();
        let h = snap.histogram(SIGNED_ERROR_HISTOGRAM).unwrap();
        assert_eq!(h.bounds, SIGNED_ERROR_BOUNDS.to_vec());
        assert_eq!(h.count(), 1);
    }
}
