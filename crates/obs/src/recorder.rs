//! The [`Recorder`] sink trait and its in-memory implementation.

use std::sync::Mutex;
use std::time::Instant;

use crate::metrics::{MetricsRegistry, MetricsSnapshot};

/// Identifies a span within one recorder. `0` is reserved for "no span"
/// (the root context); real ids start at 1.
pub type SpanId = u64;

/// One recorded span: who opened it, under what, when, and for how long.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// This span's id (index into the recorder's log, starting at 1).
    pub id: SpanId,
    /// Parent span id, or 0 for a tree root.
    pub parent: SpanId,
    /// Hierarchical name, e.g. `phase:ground-truth` or `metric:#7`.
    pub name: String,
    /// Nanoseconds since the recorder's epoch at span entry.
    pub start_ns: u64,
    /// Wall time in nanoseconds; `None` while the span is still open.
    pub dur_ns: Option<u64>,
}

/// Where instrumentation events land. Implementations must be thread-safe:
/// the study's parallel loops record from whatever thread runs them.
pub trait Recorder: Send + Sync {
    /// Open a span under `parent` (0 = root) and return its id.
    fn span_enter(&self, parent: SpanId, name: String) -> SpanId;
    /// Close the span, recording its wall time.
    fn span_exit(&self, id: SpanId, dur_ns: u64);
    /// Add `delta` to a named counter.
    fn counter_add(&self, name: &str, delta: u64);
    /// Set a named gauge.
    fn gauge_set(&self, name: &str, value: f64);
    /// Record a histogram observation.
    fn observe(&self, name: &str, value: f64);
}

/// Signed-error buckets (percent) for the per-prediction distribution —
/// asymmetric because the paper's Table 4 errors skew positive (predictions
/// overshooting measured runtime) and under-predictions bottom out at -100%.
pub const SIGNED_ERROR_BOUNDS: &[f64] = &[
    -80.0, -60.0, -40.0, -20.0, -10.0, -5.0, 0.0, 5.0, 10.0, 20.0, 40.0, 60.0, 80.0, 120.0, 200.0,
];

/// Name of the pre-registered signed-error histogram.
pub const SIGNED_ERROR_HISTOGRAM: &str = "study.signed_error_pct";

/// Collects every span and metric in memory; the manifest builder reads it
/// back at study end. Span ids are 1-based indices into an append-only log,
/// so entry order (= id order) is also chronological order.
#[derive(Debug)]
pub struct InMemoryRecorder {
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
    metrics: MetricsRegistry,
}

impl Default for InMemoryRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl InMemoryRecorder {
    /// Fresh recorder whose epoch is "now", with the study's signed-error
    /// histogram pre-registered on its paper-calibrated buckets.
    #[must_use]
    pub fn new() -> Self {
        let metrics = MetricsRegistry::new();
        metrics.register_histogram(SIGNED_ERROR_HISTOGRAM, SIGNED_ERROR_BOUNDS);
        InMemoryRecorder {
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
            metrics,
        }
    }

    /// Copy of the span log, in entry (chronological) order.
    #[must_use]
    pub fn span_records(&self) -> Vec<SpanRecord> {
        self.spans.lock().expect("span log lock").clone()
    }

    /// Deterministic snapshot of all metrics.
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The underlying registry, for pre-registering extra histograms.
    #[must_use]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }
}

impl Recorder for InMemoryRecorder {
    fn span_enter(&self, parent: SpanId, name: String) -> SpanId {
        let start_ns = self.epoch.elapsed().as_nanos() as u64;
        let mut log = self.spans.lock().expect("span log lock");
        let id = log.len() as SpanId + 1;
        log.push(SpanRecord {
            id,
            parent,
            name,
            start_ns,
            dur_ns: None,
        });
        id
    }

    fn span_exit(&self, id: SpanId, dur_ns: u64) {
        let mut log = self.spans.lock().expect("span log lock");
        if let Some(rec) = id
            .checked_sub(1)
            .and_then(|i| log.get_mut(usize::try_from(i).unwrap_or(usize::MAX)))
        {
            rec.dur_ns = Some(dur_ns);
        }
    }

    fn counter_add(&self, name: &str, delta: u64) {
        self.metrics.counter_add(name, delta);
    }

    fn gauge_set(&self, name: &str, value: f64) {
        self.metrics.gauge_set(name, value);
    }

    fn observe(&self, name: &str, value: f64) {
        self.metrics.observe(name, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_ids_are_sequential_and_exit_fills_duration() {
        let rec = InMemoryRecorder::new();
        let a = rec.span_enter(0, "a".into());
        let b = rec.span_enter(a, "b".into());
        assert_eq!((a, b), (1, 2));
        rec.span_exit(b, 50);
        rec.span_exit(a, 100);
        let log = rec.span_records();
        assert_eq!(log[0].name, "a");
        assert_eq!(log[0].dur_ns, Some(100));
        assert_eq!(log[1].parent, a);
        assert_eq!(log[1].dur_ns, Some(50));
        assert!(
            log[1].start_ns >= log[0].start_ns,
            "entry order is time order"
        );
    }

    #[test]
    fn exit_on_unknown_id_is_ignored() {
        let rec = InMemoryRecorder::new();
        rec.span_exit(0, 1);
        rec.span_exit(99, 1);
        assert!(rec.span_records().is_empty());
    }

    #[test]
    fn signed_error_histogram_is_preregistered() {
        let rec = InMemoryRecorder::new();
        rec.observe(SIGNED_ERROR_HISTOGRAM, -3.0);
        let snap = rec.metrics_snapshot();
        let h = snap.histogram(SIGNED_ERROR_HISTOGRAM).unwrap();
        assert_eq!(h.bounds, SIGNED_ERROR_BOUNDS.to_vec());
        assert_eq!(h.count(), 1);
    }
}
