//! Human rendering of a [`RunManifest`] — what `metasim obs summarize`
//! prints.
//!
//! The raw span forest of a full study holds ~1,800 spans (150 machine
//! spans × 2 phases, 1,350 metric spans, …); dumping it verbatim would be
//! unreadable. The renderer instead aggregates sibling spans by *kind* —
//! the name prefix before the first `:` — so `machine:lemieux`,
//! `machine:blueice`, … collapse into one `machine ×10` row with their
//! total and worst wall time.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::manifest::{RunManifest, SpanNode};

/// Maximum tree depth rendered before eliding deeper levels.
const MAX_DEPTH: usize = 5;

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.0}µs", s * 1e6)
    }
}

/// The name prefix before the first `:`, or the whole name.
fn kind_of(name: &str) -> &str {
    name.split(':').next().unwrap_or(name)
}

/// Sibling spans of one kind, folded into a single display row.
struct KindGroup {
    kind: String,
    count: usize,
    total_seconds: f64,
    max_seconds: f64,
    /// A representative child set (from the first member) for recursion.
    children: Vec<SpanNode>,
    /// Sole member's full name when the group has exactly one span.
    sole_name: String,
}

fn group_siblings(nodes: &[SpanNode]) -> Vec<KindGroup> {
    let mut order: Vec<String> = Vec::new();
    let mut groups: HashMap<String, KindGroup> = HashMap::new();
    for n in nodes {
        let kind = kind_of(&n.name).to_string();
        let g = groups.entry(kind.clone()).or_insert_with(|| {
            order.push(kind.clone());
            KindGroup {
                kind,
                count: 0,
                total_seconds: 0.0,
                max_seconds: 0.0,
                children: n.children.clone(),
                sole_name: n.name.clone(),
            }
        });
        g.count += 1;
        g.total_seconds += n.seconds;
        g.max_seconds = g.max_seconds.max(n.seconds);
    }
    order
        .into_iter()
        .filter_map(|k| groups.remove(&k))
        .collect()
}

fn render_tree(nodes: &[SpanNode], depth: usize, out: &mut String) {
    if depth >= MAX_DEPTH {
        return;
    }
    for g in group_siblings(nodes) {
        let indent = "  ".repeat(depth + 1);
        if g.count == 1 {
            let _ = writeln!(
                out,
                "{indent}{:<28} {:>10}",
                g.sole_name,
                fmt_secs(g.total_seconds)
            );
        } else {
            let _ = writeln!(
                out,
                "{indent}{:<28} {:>10}  (×{}, max {})",
                g.kind,
                fmt_secs(g.total_seconds),
                g.count,
                fmt_secs(g.max_seconds)
            );
        }
        render_tree(&g.children, depth + 1, out);
    }
}

/// Default length of the slowest-span listing (`--top N` overrides).
pub const DEFAULT_TOP_SPANS: usize = 10;

/// Render the manifest as a terminal-friendly report with the default
/// slowest-span listing length.
#[must_use]
pub fn render(m: &RunManifest) -> String {
    render_top(m, DEFAULT_TOP_SPANS)
}

/// Render the manifest, listing up to `top` slowest spans.
#[must_use]
pub fn render_top(m: &RunManifest, top: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "run manifest · schema v{} · {}",
        m.schema_version, m.tool
    );
    let _ = writeln!(out, "config digest  {}", m.config_digest);
    let _ = writeln!(
        out,
        "total          {} ({})",
        fmt_secs(m.total_seconds),
        if m.loaded_from_cache {
            "served from cache"
        } else {
            "computed"
        }
    );

    if !m.phases.is_empty() {
        let _ = writeln!(out, "\nphases");
        for p in &m.phases {
            let pct = if m.total_seconds > 0.0 {
                p.seconds / m.total_seconds * 100.0
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {:<14} {:>10}  {:>5.1}%  {} spans",
                p.name,
                fmt_secs(p.seconds),
                pct,
                p.spans
            );
        }
    }

    if let Some(c) = &m.cache {
        let _ = writeln!(out, "\ncache · {} (schema v{})", c.root, c.schema);
        let _ = writeln!(
            out,
            "  {} entries, {} bytes on disk; session: {} hits, {} misses, {} evictions",
            c.entries, c.bytes, c.session_hits, c.session_misses, c.session_evictions
        );
    }

    if !m.span_tree.is_empty() {
        let _ = writeln!(out, "\nspan tree (siblings grouped by kind)");
        render_tree(&m.span_tree, 0, &mut out);
    }

    if !m.slowest_spans.is_empty() && top > 0 {
        let shown = m.slowest_spans.len().min(top);
        let _ = writeln!(out, "\nslowest spans (top {shown})");
        for s in m.slowest_spans.iter().take(top) {
            let _ = writeln!(out, "  {:<28} {:>10}", s.name, fmt_secs(s.seconds));
        }
    }

    if !m.metrics.counters.is_empty() {
        let _ = writeln!(out, "\ncounters");
        let mut counters = m.metrics.counters.clone();
        counters.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        for (name, v) in counters {
            let _ = writeln!(out, "  {name:<32} {v:>12}");
        }
    }

    if !m.metrics.gauges.is_empty() {
        let _ = writeln!(out, "\ngauges");
        for (name, v) in &m.metrics.gauges {
            let _ = writeln!(out, "  {name:<32} {v:>12}");
        }
    }

    if !m.metrics.histograms.is_empty() {
        let _ = writeln!(out, "\nhistograms");
        for (name, h) in &m.metrics.histograms {
            let mean = h
                .mean()
                .map_or_else(|| "-".to_string(), |x| format!("{x:.3}"));
            let _ = writeln!(out, "  {name:<32} count {:>8}  mean {mean}", h.count());
        }
    }

    if !m.metrics.hdr_histograms.is_empty() {
        let _ = writeln!(out, "\nlatency quantiles");
        for (name, h) in &m.metrics.hdr_histograms {
            let q = |p: f64| fmt_secs(h.quantile(p).unwrap_or(0.0));
            let _ = writeln!(
                out,
                "  {name:<28} count {:>8}  p50 {:>9}  p90 {:>9}  p99 {:>9}",
                h.count(),
                q(0.50),
                q(0.90),
                q(0.99)
            );
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::{ManifestMeta, RunManifest};
    use crate::recorder::{InMemoryRecorder, Recorder};

    #[test]
    fn render_groups_siblings_and_lists_sections() {
        let rec = InMemoryRecorder::new();
        let study = rec.span_enter(0, "study".into());
        let gt = rec.span_enter(study, "phase:ground-truth".into());
        for name in ["machine:a", "machine:b", "machine:c"] {
            let m = rec.span_enter(gt, name.into());
            rec.span_exit(m, 1_000_000);
        }
        rec.span_exit(gt, 4_000_000);
        rec.span_exit(study, 5_000_000);
        rec.counter_add("cache.hit.trace", 7);
        rec.gauge_set("study.observations", 150.0);
        rec.observe("study.signed_error_pct", 10.0);
        let m = RunManifest::build(
            &rec,
            ManifestMeta {
                tool: "metasim test".into(),
                config_digest: "ff00".into(),
                ..ManifestMeta::default()
            },
        );
        let text = render(&m);
        assert!(text.contains("schema v2"), "{text}");
        assert!(text.contains("phases"), "{text}");
        assert!(text.contains("ground-truth"), "{text}");
        assert!(text.contains("machine"), "{text}");
        assert!(text.contains("×3"), "grouped machine spans: {text}");
        assert!(text.contains("slowest spans"), "{text}");
        assert!(text.contains("cache.hit.trace"), "{text}");
        assert!(text.contains("study.signed_error_pct"), "{text}");
    }

    #[test]
    fn top_flag_limits_the_slowest_span_listing() {
        let rec = InMemoryRecorder::new();
        let study = rec.span_enter(0, "study".into());
        for i in 0..5u64 {
            let m = rec.span_enter(study, format!("machine:{i}"));
            rec.span_exit(m, (i + 1) * 1_000_000);
        }
        rec.span_exit(study, 20_000_000);
        let m = RunManifest::build(&rec, ManifestMeta::default());

        let top2 = render_top(&m, 2);
        assert!(top2.contains("slowest spans (top 2)"), "{top2}");
        assert!(top2.contains("machine:4") && top2.contains("machine:3"));
        assert!(!top2.contains("machine:2"), "{top2}");
        assert!(
            !render_top(&m, 0).contains("slowest spans"),
            "--top 0 hides the section"
        );
        assert_eq!(render(&m), render_top(&m, 10), "render is the default top");
    }

    #[test]
    fn latency_quantiles_render_next_to_counts() {
        let rec = InMemoryRecorder::new();
        let study = rec.span_enter(0, "study".into());
        rec.span_exit(study, 1_000_000);
        for i in 1..=100 {
            rec.observe_hdr("lat.prediction", f64::from(i) * 1e-3);
        }
        let m = RunManifest::build(&rec, ManifestMeta::default());
        let text = render(&m);
        assert!(text.contains("latency quantiles"), "{text}");
        assert!(text.contains("lat.prediction"), "{text}");
        assert!(text.contains("p50") && text.contains("p99"), "{text}");
        let line = text
            .lines()
            .find(|l| l.contains("lat.prediction"))
            .expect("histogram row");
        assert!(line.contains("100"), "count on the row: {line}");
    }

    #[test]
    fn formats_scale_units() {
        assert_eq!(fmt_secs(2.5), "2.50s");
        assert_eq!(fmt_secs(0.0025), "2.50ms");
        assert_eq!(fmt_secs(0.0000034), "3µs");
    }
}
