//! Probe-layer audit rules: the `MS1xx` block plus [`MS204`].
//!
//! These rules verify *measured* artifacts — MAPS/ENHANCED MAPS curves and
//! HPL results — against the physical invariants the paper's convolution
//! leans on: bandwidth falls as working sets outgrow caches (§3, Figure 1),
//! dependence never speeds a loop up (ENHANCED MAPS), random access never
//! beats unit stride, and HPL never beats peak (Table 1).

use metasim_audit::registry::{MS101, MS102, MS103, MS104, MS105, MS106, MS204};
use metasim_audit::Auditor;
use metasim_machines::MachineConfig;
use metasim_memsim::bandwidth::{measure_bandwidth, Workload};
use metasim_memsim::timing::{AccessKind, DependencyMode};

use crate::maps::MapsCurve;
use crate::suite::MachineProbes;

/// Tolerance for [`MS102`] monotonicity: measured curves may wobble a few
/// percent at plateau boundaries without being wrong.
const MONOTONE_TOLERANCE: f64 = 1.05;

/// Tolerance for the cross-curve dominance rules ([`MS103`], [`MS104`]).
const DOMINANCE_TOLERANCE: f64 = 1.01;

/// [`MS106`]: the L1 plateau should sit at least this far above the
/// main-memory plateau (the paper's fleet spans 3–100×).
const MIN_PLATEAU_RATIO: f64 = 1.5;

/// [`MS101`] shape + [`MS102`] monotonicity for one curve, relative to the
/// auditor's current scope.
pub fn audit_curve(curve: &MapsCurve, a: &mut Auditor) {
    if curve.points.len() < 2 {
        a.finding_at(
            &MS101,
            "points",
            format!("curve has {} point(s), need at least 2", curve.points.len()),
        );
        return;
    }
    for (i, &(size, bw)) in curve.points.iter().enumerate() {
        if !(bw.is_finite() && bw > 0.0) {
            a.finding_at(
                &MS101,
                format!("points[{i}]"),
                format!("bandwidth {bw} at {size} B must be finite and positive"),
            );
        }
    }
    for (i, w) in curve.points.windows(2).enumerate() {
        if w[1].0 <= w[0].0 {
            a.finding_at(
                &MS101,
                format!("points[{}]", i + 1),
                format!("sizes must strictly increase: {} then {}", w[0].0, w[1].0),
            );
        }
        if w[1].1 > w[0].1 * MONOTONE_TOLERANCE {
            a.finding_at(
                &MS102,
                format!("points[{}]", i + 1),
                format!(
                    "bandwidth rises {:.3e} -> {:.3e} as the working set grows {} -> {}",
                    w[0].1, w[1].1, w[0].0, w[1].0
                ),
            );
        }
    }
}

/// `upper` must dominate `lower` (pointwise, within tolerance) on the shared
/// sweep grid; emit `rule` findings where it does not.
fn audit_dominance(
    a: &mut Auditor,
    rule: &'static metasim_audit::registry::Rule,
    lower_name: &str,
    lower: &MapsCurve,
    upper_name: &str,
    upper: &MapsCurve,
) {
    if lower.points.len() != upper.points.len() {
        a.finding(
            rule,
            format!(
                "{lower_name} and {upper_name} were swept on different grids ({} vs {} points)",
                lower.points.len(),
                upper.points.len()
            ),
        );
        return;
    }
    for (&(size, lo), &(usize_, up)) in lower.points.iter().zip(&upper.points) {
        if size != usize_ {
            a.finding(
                rule,
                format!("{lower_name}/{upper_name} grids diverge at {size} vs {usize_}"),
            );
            return;
        }
        if lo > up * DOMINANCE_TOLERANCE {
            a.finding_at(
                rule,
                lower_name,
                format!("{lower_name} {lo:.3e} beats {upper_name} {up:.3e} at working set {size}"),
            );
        }
    }
}

/// Audit one machine's full probe set, relative to the auditor's current
/// scope. Covers [`MS101`]–[`MS106`] and [`MS204`].
pub fn audit_probes(machine: &MachineConfig, probes: &MachineProbes, a: &mut Auditor) {
    let maps = &probes.maps;
    for (name, curve) in [
        ("maps.unit", &maps.unit),
        ("maps.random", &maps.random),
        ("maps.unit_chained", &maps.unit_chained),
        ("maps.unit_branchy", &maps.unit_branchy),
        ("maps.random_chained", &maps.random_chained),
    ] {
        a.scope(name.to_string(), |a| audit_curve(curve, a));
    }

    a.scope("maps".to_string(), |a| {
        // MS104: random access never beats unit stride at the same size.
        audit_dominance(a, &MS104, "random", &maps.random, "unit", &maps.unit);
        audit_dominance(
            a,
            &MS104,
            "random_chained",
            &maps.random_chained,
            "unit_chained",
            &maps.unit_chained,
        );
        // MS103: dependence limits MLP, it cannot add bandwidth.
        audit_dominance(
            a,
            &MS103,
            "unit_chained",
            &maps.unit_chained,
            "unit",
            &maps.unit,
        );
        audit_dominance(
            a,
            &MS103,
            "unit_branchy",
            &maps.unit_branchy,
            "unit",
            &maps.unit,
        );
        audit_dominance(
            a,
            &MS103,
            "random_chained",
            &maps.random_chained,
            "random",
            &maps.random,
        );

        // MS106: the curve should actually have a cache cliff.
        if let (Some(&(_, l1)), plateau) = (maps.unit.points.first(), maps.unit.plateau().get()) {
            if plateau > 0.0 && l1 / plateau < MIN_PLATEAU_RATIO {
                a.finding_at(
                    &MS106,
                    "unit",
                    format!(
                        "L1 plateau {l1:.3e} is only {:.2}x the memory plateau {plateau:.3e}",
                        l1 / plateau
                    ),
                );
            }
        }
    });

    // MS105: HPL cannot beat theoretical peak.
    let peak = machine.processor.peak_gflops();
    if probes.hpl.rmax_gflops_per_proc > peak * (1.0 + 1e-9) {
        a.finding_at(
            &MS105,
            "hpl.rmax_gflops_per_proc",
            format!(
                "measured Rmax {:.3} GFLOP/s exceeds peak {peak:.3} GFLOP/s",
                probes.hpl.rmax_gflops_per_proc
            ),
        );
    }

    // MS204: the cache simulator's hit fractions must partition the access
    // stream. Two cheap samples bracket the hierarchy: an L1-resident
    // sequential sweep and a DRAM-resident random sweep.
    for (name, ws, kind) in [
        ("cache_resident", 16u64 << 10, AccessKind::Sequential),
        ("memory_resident", 64 << 20, AccessKind::Random),
    ] {
        let sample = measure_bandwidth(
            &machine.memory,
            &Workload::new(ws, kind, DependencyMode::Independent),
        );
        let profile = &sample.profile;
        let mut sum = profile.memory_fraction();
        let mut in_range = (0.0..=1.0).contains(&sum);
        for i in 0..profile.level_hits.len() {
            let f = profile.level_fraction(i);
            in_range &= (0.0..=1.0).contains(&f);
            sum += f;
        }
        if !in_range || (sum - 1.0).abs() > 1e-9 {
            a.finding_at(
                &MS204,
                format!("hit_fractions.{name}"),
                format!("level + memory hit fractions sum to {sum}, expected exactly 1"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maps::DependencyFlavor;
    use metasim_audit::audit_value;
    use metasim_machines::{fleet, MachineId};

    fn curve(points: Vec<(u64, f64)>) -> MapsCurve {
        MapsCurve::new(
            AccessKind::Sequential,
            DependencyFlavor::Independent,
            points,
        )
    }

    #[test]
    fn good_curve_is_clean() {
        let c = curve(vec![(4096, 10e9), (8192, 9e9), (16384, 4e9)]);
        let report = audit_value(|a| audit_curve(&c, a));
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn short_curve_fires_ms101() {
        let c = curve(vec![(4096, 10e9)]);
        let report = audit_value(|a| audit_curve(&c, a));
        assert!(report.has_code("MS101"), "{report}");
    }

    #[test]
    fn nonpositive_bandwidth_fires_ms101() {
        let c = curve(vec![(4096, 10e9), (8192, -1.0)]);
        let report = audit_value(|a| audit_curve(&c, a));
        assert!(report.has_code("MS101"), "{report}");
    }

    #[test]
    fn unsorted_sizes_fire_ms101() {
        let c = curve(vec![(8192, 10e9), (4096, 9e9)]);
        let report = audit_value(|a| audit_curve(&c, a));
        assert!(report.has_code("MS101"), "{report}");
    }

    #[test]
    fn rising_curve_fires_ms102() {
        let c = curve(vec![(4096, 2e9), (8192, 4e9)]);
        let report = audit_value(|a| audit_curve(&c, a));
        assert!(report.has_code("MS102"), "{report}");
    }

    #[test]
    fn doctored_probes_fire_cross_curve_rules() {
        let f = fleet();
        let m = f.get(MachineId::ArlXeon);
        let mut probes = MachineProbes::measure(m);
        // Random suddenly beats unit stride: MS104.
        for p in &mut probes.maps.random.points {
            p.1 *= 100.0;
        }
        // HPL beats peak: MS105.
        probes.hpl.rmax_gflops_per_proc =
            metasim_units::Gflops::new(m.processor.peak_gflops() * 2.0);
        let report = audit_value(|a| audit_probes(m, &probes, a));
        assert!(report.has_code("MS104"), "{report}");
        assert!(report.has_code("MS105"), "{report}");
    }

    #[test]
    fn doctored_chained_curve_fires_ms103() {
        let f = fleet();
        let m = f.get(MachineId::ArlXeon);
        let mut probes = MachineProbes::measure(m);
        for p in &mut probes.maps.unit_chained.points {
            p.1 *= 100.0;
        }
        let report = audit_value(|a| audit_probes(m, &probes, a));
        assert!(report.has_code("MS103"), "{report}");
    }

    #[test]
    fn flat_curve_fires_ms106_warning() {
        let f = fleet();
        let m = f.get(MachineId::ArlXeon);
        let mut probes = MachineProbes::measure(m);
        let plateau = probes.maps.unit.plateau().get();
        for p in &mut probes.maps.unit.points {
            p.1 = plateau;
        }
        // Flatten the dominated curves too so only MS106 is in question.
        probes.maps.random = probes.maps.unit.clone();
        probes.maps.unit_chained = probes.maps.unit.clone();
        probes.maps.unit_branchy = probes.maps.unit.clone();
        probes.maps.random_chained = probes.maps.unit.clone();
        let report = audit_value(|a| audit_probes(m, &probes, a));
        assert!(report.has_code("MS106"), "{report}");
        assert!(!report.has_errors(), "MS106 is a warning: {report}");
    }

    #[test]
    fn shipped_fleet_probes_are_clean() {
        let f = fleet();
        for m in f.all() {
            let probes = MachineProbes::measure(m);
            let report = audit_value(|a| {
                a.scope(m.id.to_string(), |a| audit_probes(m, &probes, a));
            });
            assert!(report.is_clean(), "{}:\n{report}", m.id);
        }
    }
}
