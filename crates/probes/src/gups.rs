//! The GUPS probe (HPC Challenge Random Access).
//!
//! Random 8-byte updates over a table far larger than any cache. We report
//! both giga-updates/second and the effective random-access bandwidth the
//! convolver uses as the "random memory" rate for Metric #6.

use serde::{Deserialize, Serialize};

use metasim_machines::MachineConfig;
use metasim_memsim::analytic::{measure_bandwidth_tiered, ResolvedTier};
use metasim_memsim::bandwidth::{Workload, ELEMENT_BYTES};
use metasim_memsim::timing::{AccessKind, DependencyMode};
use metasim_units::{BytesPerSec, UpdatesPerSec};

/// Result of the GUPS probe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GupsResult {
    /// Table size used, bytes.
    pub table_bytes: u64,
    /// Updates per second.
    pub updates_per_second: UpdatesPerSec,
}

impl GupsResult {
    /// Giga-updates per second — the headline GUPS figure.
    #[must_use]
    pub fn gups(&self) -> f64 {
        self.updates_per_second.get() / 1e9
    }

    /// Effective random-access bandwidth in bytes/second (8 B per update).
    #[must_use]
    pub fn effective_bandwidth(&self) -> BytesPerSec {
        BytesPerSec::new(self.updates_per_second.get() * ELEMENT_BYTES as f64)
    }
}

/// GUPS table size: 16× the outermost cache, clamped to [64 MiB, 512 MiB].
#[must_use]
pub fn gups_table_bytes(machine: &MachineConfig) -> u64 {
    let last_cache = machine
        .memory
        .levels
        .last()
        .map_or(1 << 20, |l| l.capacity_bytes);
    (last_cache * 16).clamp(64 << 20, 512 << 20)
}

/// Run the GUPS probe.
#[must_use]
pub fn measure_gups(machine: &MachineConfig) -> GupsResult {
    measure_gups_tiered(machine, ResolvedTier::Exact)
}

/// [`measure_gups`] under an explicit resolved model tier (the exact tier
/// is byte-identical to [`measure_gups`]).
#[must_use]
pub fn measure_gups_tiered(machine: &MachineConfig, tier: ResolvedTier) -> GupsResult {
    let table_bytes = gups_table_bytes(machine);
    let (sample, _) = measure_bandwidth_tiered(
        &machine.memory,
        &Workload::new(table_bytes, AccessKind::Random, DependencyMode::Independent),
        tier.as_tier(),
    );
    let updates = sample.profile.total_accesses() as f64;
    GupsResult {
        table_bytes,
        updates_per_second: if sample.seconds > 0.0 {
            UpdatesPerSec::new(updates / sample.seconds)
        } else {
            UpdatesPerSec::new(0.0)
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::measure_stream;
    use metasim_machines::{fleet, MachineId};

    #[test]
    fn gups_is_far_below_stream_everywhere() {
        let f = fleet();
        for m in f.all() {
            let g = measure_gups(m);
            let s = measure_stream(m);
            assert!(
                g.effective_bandwidth() < 0.3 * s.bandwidth,
                "{}: random {} vs stream {}",
                m.id,
                g.effective_bandwidth(),
                s.bandwidth
            );
            assert!(g.gups() > 0.0);
        }
    }

    #[test]
    fn opteron_low_latency_wins_gups() {
        let f = fleet();
        let opteron = measure_gups(f.get(MachineId::ArlOpteron)).gups();
        for id in MachineId::TARGETS {
            if id != MachineId::ArlOpteron {
                let g = measure_gups(f.get(id)).gups();
                assert!(opteron > g, "{id} beats Opteron at GUPS?");
            }
        }
    }

    #[test]
    fn gups_reflects_latency_and_mlp() {
        // Effective update rate should be within 2x of mlp/latency (TLB and
        // occasional cache hits move it around).
        let f = fleet();
        let m = f.get(MachineId::Navo655);
        let g = measure_gups(m);
        let ideal = m.memory.mlp / m.memory.memory.latency;
        assert!(g.updates_per_second < ideal * 1.2);
        assert!(g.updates_per_second > ideal * 0.3);
    }

    #[test]
    fn table_dwarfs_caches() {
        let f = fleet();
        for m in f.all() {
            assert!(
                gups_table_bytes(m) >= 8 * m.memory.levels.last().unwrap().capacity_bytes,
                "{}",
                m.id
            );
        }
    }
}
