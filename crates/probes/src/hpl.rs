//! The HPL (High Performance LINPACK) probe.
//!
//! HPL factorizes a dense N×N system; its reported `Rmax` is
//! `(2/3·N³ + 2·N²) / T`. We model the dominant costs of the blocked
//! right-looking algorithm on `p` processes:
//!
//! * update flops run at the machine's dense-kernel efficiency
//!   (`hpl_efficiency` — DGEMM on these machines sits near HPL's measured
//!   efficiency),
//! * each of the `N/nb` panel iterations broadcasts an `N·nb`-element panel
//!   across the process row (cost from the network simulator),
//!
//! so the reported per-processor `Rmax` lands *below* `peak × efficiency`
//! and degrades slightly with process count, as real submissions do.

use serde::{Deserialize, Serialize};

use metasim_machines::MachineConfig;
use metasim_netsim::collectives::broadcast_time;
use metasim_units::{FlopsPerSec, Gflops, Ratio, Seconds};

/// Result of an HPL run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HplResult {
    /// Problem dimension used.
    pub n: u64,
    /// Processes used.
    pub processes: u64,
    /// Wall-clock seconds of the modelled factorization.
    pub seconds: Seconds,
    /// Reported Rmax per processor, GFLOP/s.
    pub rmax_gflops_per_proc: Gflops,
    /// Theoretical peak per processor, GFLOP/s.
    pub rpeak_gflops_per_proc: Gflops,
}

impl HplResult {
    /// Rmax/Rpeak efficiency actually achieved.
    #[must_use]
    pub fn efficiency(&self) -> Ratio {
        self.rmax_gflops_per_proc / self.rpeak_gflops_per_proc
    }

    /// Rmax per processor in FLOP/s.
    #[must_use]
    pub fn rmax_flops_per_proc(&self) -> FlopsPerSec {
        self.rmax_gflops_per_proc.flops_per_sec()
    }
}

/// Blocking factor used by the modelled factorization.
const BLOCK: u64 = 128;

/// Run the HPL probe on `machine` with `processes` MPI ranks.
///
/// The problem size fills a fixed fraction of a nominal 1 GiB/process so
/// results are comparable across machines (as TI-XX submissions were).
#[must_use]
pub fn measure_hpl(machine: &MachineConfig, processes: u64) -> HplResult {
    assert!(processes >= 1, "HPL needs at least one process");
    // N chosen so the matrix fills ~80% of 1 GiB per process.
    let bytes_per_proc = (0.8 * (1u64 << 30) as f64) as u64;
    let n = ((processes * bytes_per_proc / 8) as f64).sqrt() as u64;

    let peak = machine.processor.peak_flops();
    let kernel_rate = peak * machine.processor.hpl_efficiency; // flops/s/proc

    let total_flops = (2.0 / 3.0) * (n as f64).powi(3) + 2.0 * (n as f64).powi(2);
    let compute_seconds = total_flops / (kernel_rate * processes as f64);

    // Panel broadcasts: N/nb iterations, each moving a shrinking panel of
    // roughly (N - k·nb)·nb doubles across the process row (√p wide).
    let row = (processes as f64).sqrt().max(1.0) as u64;
    let iterations = n / BLOCK;
    let mut comm_seconds = Seconds::new(0.0);
    if row > 1 {
        for k in 0..iterations {
            let rows_left = n - k * BLOCK;
            let panel_bytes = rows_left * BLOCK * 8 / row;
            comm_seconds += broadcast_time(&machine.network, row, panel_bytes);
        }
    }

    let seconds = compute_seconds + comm_seconds.get();
    let rmax_total = total_flops / seconds;
    HplResult {
        n,
        processes,
        seconds: Seconds::new(seconds),
        rmax_gflops_per_proc: Gflops::new(rmax_total / processes as f64 / 1e9),
        rpeak_gflops_per_proc: Gflops::new(machine.processor.peak_gflops()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metasim_machines::{fleet, MachineId};

    #[test]
    fn rmax_below_peak_and_near_kernel_efficiency() {
        let f = fleet();
        for m in f.all() {
            let r = measure_hpl(m, 64);
            assert!(
                r.rmax_gflops_per_proc < r.rpeak_gflops_per_proc,
                "{}: Rmax must be below peak",
                m.id
            );
            let eff = r.efficiency();
            assert!(
                eff > 0.5 * m.processor.hpl_efficiency && eff <= m.processor.hpl_efficiency,
                "{}: efficiency {eff} vs kernel {k}",
                m.id,
                k = m.processor.hpl_efficiency
            );
        }
    }

    #[test]
    fn efficiency_degrades_with_scale() {
        let f = fleet();
        let m = f.get(MachineId::ArlXeon);
        let small = measure_hpl(m, 4);
        let large = measure_hpl(m, 256);
        assert!(
            large.rmax_gflops_per_proc < small.rmax_gflops_per_proc,
            "per-proc Rmax should shrink with p: {} vs {}",
            large.rmax_gflops_per_proc,
            small.rmax_gflops_per_proc
        );
    }

    #[test]
    fn single_process_run_has_no_comm() {
        let f = fleet();
        let m = f.get(MachineId::ArlOpteron);
        let r = measure_hpl(m, 1);
        let expect = m.processor.peak_gflops() * m.processor.hpl_efficiency;
        // With no broadcasts, the only deviation from kernel rate is the
        // N² term's share, which is tiny at this N.
        assert!((r.rmax_gflops_per_proc.get() - expect).abs() / expect < 0.01);
    }

    #[test]
    fn altix_leads_per_proc_rmax() {
        let f = fleet();
        let altix = measure_hpl(f.get(MachineId::ArlAltix), 64).rmax_gflops_per_proc;
        for id in MachineId::TARGETS {
            if id != MachineId::ArlAltix {
                let r = measure_hpl(f.get(id), 64).rmax_gflops_per_proc;
                assert!(altix > r, "{id} beats Altix at HPL?");
            }
        }
    }

    #[test]
    fn problem_size_scales_with_processes() {
        let f = fleet();
        let m = f.get(MachineId::Navo655);
        let a = measure_hpl(m, 16);
        let b = measure_hpl(m, 64);
        assert!(b.n > a.n);
        assert!(
            (b.n as f64 / a.n as f64 - 2.0).abs() < 0.01,
            "N scales as sqrt(p)"
        );
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_processes_panics() {
        let f = fleet();
        let _ = measure_hpl(f.base(), 0);
    }
}
