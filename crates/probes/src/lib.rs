//! Synthetic benchmark probes: the paper's measurement layer.
//!
//! Table 3 of the paper builds its nine metrics out of six measurement
//! sources: HPL, STREAM, GUPS (HPC Challenge Random Access), MEMBENCH MAPS,
//! ENHANCED MAPS, and NETBENCH. This crate implements each one as a probe
//! that *runs against* a simulated machine rather than reading its
//! configuration:
//!
//! * [`hpl`] models a blocked LU factorization (flops at the machine's dense
//!   kernel efficiency plus panel broadcasts over the simulated network) and
//!   reports per-processor `Rmax`.
//! * [`stream`] and [`gups`] drive unit-stride and random address streams
//!   through the cache simulator at main-memory-sized working sets.
//! * [`maps`] sweeps working-set sizes from L1-resident to DRAM-resident for
//!   unit and random stride, producing the bandwidth-versus-size curves of
//!   the paper's Figure 1; ENHANCED MAPS repeats the sweep under
//!   loop-carried-dependency and branchy issue modes.
//! * [`netbench`] runs ping-pong and `all_reduce` measurements over the
//!   network model and reports *measured* latency/bandwidth (the software
//!   overhead folds into the measured numbers, just as it does on real
//!   fabrics — one of the organic error sources for Metric #8).
//!
//! [`suite::ProbeSuite`] measures and memoizes the full set per machine with
//! single-flight semantics — concurrent cold callers coalesce onto one
//! measurement per machine (see [`suite`]). Within one measurement, each
//! MAPS curve's *working-set sweep* is a Rayon `par_iter` over the sweep
//! sizes ([`maps::sweep_sizes`]); the five curves themselves are measured
//! sequentially, as are the other probes. Under an installed
//! `metasim-chaos` fault plan, acquisition can fail — see
//! [`suite::ProbeSuite::try_measure`] and [`suite::ProbeFailure`].
//!
//! ```
//! use metasim_machines::{fleet, MachineId};
//! use metasim_probes::suite::ProbeSuite;
//!
//! let fleet = fleet();
//! let suite = ProbeSuite::new();
//! let probes = suite.measure(fleet.get(MachineId::ArlOpteron));
//! assert!(probes.stream.gb_per_second() > 1.0);
//! assert!(probes.hpl.rmax_gflops_per_proc < probes.hpl.rpeak_gflops_per_proc);
//! ```

pub mod audit;
pub mod gups;
pub mod hpl;
pub mod maps;
pub mod netbench;
pub mod stream;
pub mod suite;

pub use audit::{audit_curve, audit_probes};
pub use gups::{measure_gups, GupsResult};
pub use hpl::{measure_hpl, HplResult};
pub use maps::{measure_maps, DependencyFlavor, MapsCurve, MapsSet};
pub use netbench::{measure_netbench, NetbenchResult};
pub use stream::{measure_stream, StreamResult};
pub use suite::{MachineProbes, ProbeFailure, ProbeSuite};

// The tier vocabulary is part of this crate's public API (ProbeSuite::with_tier
// and the tiered probe functions take it); re-export so downstream crates can
// name it without depending on the simulator crate directly.
pub use metasim_memsim::analytic::{ResolvedTier, Tier};
