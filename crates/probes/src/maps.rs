//! The MEMBENCH MAPS probe: memory bandwidth versus working-set size.
//!
//! MAPS "is equivalent to launching multiple instances of both STREAM and
//! GUPS at various sizes in order to span the various levels of cache"
//! (paper §3). We sweep working sets from 4 KiB to 128 MiB at half-octave
//! spacing for unit-stride and random patterns. ENHANCED MAPS repeats the
//! sweep with loop-carried-dependency and branchy issue modes, "inducing
//! data and control-flow dependencies in the inner loop of both STREAM and
//! GUPS".
//!
//! A [`MapsCurve`] supports log-space interpolation so the convolver can ask
//! for the delivered bandwidth at any application working-set size —
//! exactly how the paper's Metrics #7–#9 consume the curves.

use std::sync::OnceLock;

use rayon::prelude::*;
use serde::{DeError, Deserialize, Serialize, Value};

use metasim_machines::MachineConfig;
use metasim_memsim::analytic::{measure_bandwidth_tiered, ResolvedTier};
use metasim_memsim::bandwidth::Workload;
use metasim_memsim::timing::{AccessKind, DependencyMode};
use metasim_units::BytesPerSec;

/// Which inner-loop flavour a curve was measured with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DependencyFlavor {
    /// Plain MAPS: independent iterations.
    Independent,
    /// ENHANCED MAPS: loop-carried data dependency.
    Chained,
    /// ENHANCED MAPS: unpredictable branch in the loop body.
    Branchy,
}

impl DependencyFlavor {
    fn mode(self) -> DependencyMode {
        match self {
            DependencyFlavor::Independent => DependencyMode::Independent,
            DependencyFlavor::Chained => DependencyMode::Chained,
            DependencyFlavor::Branchy => DependencyMode::Branchy,
        }
    }
}

/// One measured bandwidth-versus-size curve.
///
/// Interpolation happens in log-size space; the knot logarithms are computed
/// once per curve (lazily, in a [`OnceLock`]) rather than on every
/// [`bandwidth_at`](MapsCurve::bandwidth_at) call — the convolver performs
/// two lookups per work block per curve-based metric, thousands per study.
/// Equality and serialization cover only the measured data (`kind`,
/// `flavor`, `points`); the log table is a derived cache.
#[derive(Debug, Clone)]
pub struct MapsCurve {
    /// Access pattern the curve was measured with.
    pub kind: AccessKind,
    /// Dependency flavour.
    pub flavor: DependencyFlavor,
    /// `(working_set_bytes, bytes_per_second)` points, ascending in size.
    /// Bandwidths may be adjusted in place (curve capping); sizes must not
    /// change after the first `bandwidth_at` call on a clone of the curve —
    /// [`MapsCurve::new`] a fresh curve instead.
    pub points: Vec<(u64, f64)>,
    /// Lazily built `ln(size)` per knot, index-aligned with `points`.
    log_sizes: OnceLock<Vec<f64>>,
}

impl PartialEq for MapsCurve {
    fn eq(&self, other: &Self) -> bool {
        self.kind == other.kind && self.flavor == other.flavor && self.points == other.points
    }
}

impl Serialize for MapsCurve {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("kind".to_string(), self.kind.to_value()),
            ("flavor".to_string(), self.flavor.to_value()),
            ("points".to_string(), self.points.to_value()),
        ])
    }
}

impl Deserialize for MapsCurve {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let Value::Object(pairs) = v else {
            return Err(DeError("MapsCurve expects an object".to_string()));
        };
        Ok(Self::new(
            serde::field(pairs, "kind", "MapsCurve")?,
            serde::field(pairs, "flavor", "MapsCurve")?,
            serde::field(pairs, "points", "MapsCurve")?,
        ))
    }
}

impl MapsCurve {
    /// A curve from measured points (ascending in working-set size).
    #[must_use]
    pub fn new(kind: AccessKind, flavor: DependencyFlavor, points: Vec<(u64, f64)>) -> Self {
        Self {
            kind,
            flavor,
            points,
            log_sizes: OnceLock::new(),
        }
    }

    /// The `ln(size)` table, built on first use.
    fn log_sizes(&self) -> &[f64] {
        self.log_sizes
            .get_or_init(|| self.points.iter().map(|&(s, _)| (s as f64).ln()).collect())
    }

    /// Delivered bandwidth at an arbitrary working-set size, by log-linear
    /// interpolation; clamps to the measured range.
    ///
    /// # Panics
    /// Panics if the curve is empty.
    #[must_use]
    pub fn bandwidth_at(&self, working_set: u64) -> BytesPerSec {
        assert!(!self.points.is_empty(), "empty MAPS curve");
        let ws = working_set.max(1) as f64;
        let first = self.points[0];
        let last = *self.points.last().expect("non-empty");
        if ws <= first.0 as f64 {
            return BytesPerSec::new(first.1);
        }
        if ws >= last.0 as f64 {
            return BytesPerSec::new(last.1);
        }
        let idx = self.points.partition_point(|&(size, _)| (size as f64) < ws);
        let (s0, b0) = self.points[idx - 1];
        let (s1, b1) = self.points[idx];
        if s0 == s1 {
            return BytesPerSec::new(b0);
        }
        let logs = self.log_sizes();
        let t = (ws.ln() - logs[idx - 1]) / (logs[idx] - logs[idx - 1]);
        BytesPerSec::new(b0 + t * (b1 - b0))
    }

    /// The main-memory plateau: the last (largest working set) point — this
    /// is "the lower right-hand portion" that matches STREAM/GUPS (§3).
    #[must_use]
    pub fn plateau(&self) -> BytesPerSec {
        BytesPerSec::new(self.points.last().map_or(0.0, |&(_, bw)| bw))
    }
}

/// The full MAPS measurement for one machine: unit and random curves, plus
/// the ENHANCED dependency/branch variants of each.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MapsSet {
    /// Unit-stride, independent (the Figure 1 curve).
    pub unit: MapsCurve,
    /// Random, independent.
    pub random: MapsCurve,
    /// Unit-stride with a loop-carried dependency (ENHANCED).
    pub unit_chained: MapsCurve,
    /// Unit-stride with an in-loop branch (ENHANCED).
    pub unit_branchy: MapsCurve,
    /// Random with a loop-carried dependency (ENHANCED).
    pub random_chained: MapsCurve,
}

impl MapsSet {
    /// Select the curve for a pattern/flavour pair as Metric #9 does.
    #[must_use]
    pub fn curve(&self, random: bool, flavor: DependencyFlavor) -> &MapsCurve {
        match (random, flavor) {
            (false, DependencyFlavor::Independent) => &self.unit,
            (false, DependencyFlavor::Chained) => &self.unit_chained,
            (false, DependencyFlavor::Branchy) => &self.unit_branchy,
            (true, DependencyFlavor::Independent) => &self.random,
            // Branchy random loops behave like chained ones at this model's
            // granularity.
            (true, DependencyFlavor::Chained | DependencyFlavor::Branchy) => &self.random_chained,
        }
    }
}

/// The working-set sizes MAPS sweeps: 4 KiB → 128 MiB at half-octave steps.
/// Computed once per process — every one of the 55 per-machine curve sweeps
/// shares this slice instead of rebuilding the grid.
#[must_use]
pub fn sweep_sizes() -> &'static [u64] {
    static SIZES: OnceLock<Vec<u64>> = OnceLock::new();
    SIZES.get_or_init(|| {
        let mut sizes = Vec::new();
        let mut s: u64 = 4 << 10;
        while s <= 128 << 20 {
            sizes.push(s);
            let next = s * 3 / 2;
            sizes.push(next.min(128 << 20));
            s *= 2;
        }
        sizes.dedup();
        sizes
    })
}

fn measure_curve(
    machine: &MachineConfig,
    kind: AccessKind,
    flavor: DependencyFlavor,
    tier: ResolvedTier,
) -> MapsCurve {
    let points: Vec<(u64, f64)> = sweep_sizes()
        .par_iter()
        .map(|&ws| {
            let (sample, _) = measure_bandwidth_tiered(
                &machine.memory,
                &Workload::new(ws, kind, flavor.mode()),
                tier.as_tier(),
            );
            (ws, sample.bytes_per_second().get())
        })
        .collect();
    MapsCurve::new(kind, flavor, points)
}

/// Cap `curve` pointwise at `bound`. Curves share the [`sweep_sizes`] grid
/// and interpolate linearly between the same knots, so a pointwise cap
/// enforces the ordering at every interpolated working-set size too.
fn cap_curve(curve: &mut MapsCurve, bound: &MapsCurve) {
    debug_assert_eq!(curve.points.len(), bound.points.len(), "shared sweep grid");
    for (p, b) in curve.points.iter_mut().zip(&bound.points) {
        debug_assert_eq!(p.0, b.0, "shared sweep grid");
        p.1 = p.1.min(b.1);
    }
}

/// Run the full MAPS + ENHANCED MAPS measurement for one machine.
///
/// The random curves are capped at their unit-stride counterparts (and the
/// chained random curve at the independent random curve): while a working
/// set is cache-resident, random hits issue from the same load ports as
/// unit-stride hits, so a measured random sweep can never sit above the
/// unit sweep — the cap keeps the published curves on the physical side of
/// that bound where the simulator's latency/MLP regime would overshoot it
/// on high-MLP machines. Beyond cache the random curves are latency-bound
/// far below unit stride and the cap never binds.
#[must_use]
pub fn measure_maps(machine: &MachineConfig) -> MapsSet {
    measure_maps_tiered(machine, ResolvedTier::Exact)
}

/// [`measure_maps`] under an explicit resolved model tier. The exact tier is
/// byte-identical to [`measure_maps`]; the analytic tier shares the same
/// sweep grid and curve-capping pipeline, only the per-point sample comes
/// from the closed-form model.
#[must_use]
pub fn measure_maps_tiered(machine: &MachineConfig, tier: ResolvedTier) -> MapsSet {
    let unit = measure_curve(
        machine,
        AccessKind::Sequential,
        DependencyFlavor::Independent,
        tier,
    );
    let mut random = measure_curve(
        machine,
        AccessKind::Random,
        DependencyFlavor::Independent,
        tier,
    );
    let unit_chained = measure_curve(
        machine,
        AccessKind::Sequential,
        DependencyFlavor::Chained,
        tier,
    );
    let unit_branchy = measure_curve(
        machine,
        AccessKind::Sequential,
        DependencyFlavor::Branchy,
        tier,
    );
    let mut random_chained =
        measure_curve(machine, AccessKind::Random, DependencyFlavor::Chained, tier);
    cap_curve(&mut random, &unit);
    cap_curve(&mut random_chained, &unit_chained);
    cap_curve(&mut random_chained, &random);
    MapsSet {
        unit,
        random,
        unit_chained,
        unit_branchy,
        random_chained,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metasim_machines::{fleet, MachineId};

    fn maps_for(id: MachineId) -> MapsSet {
        measure_maps(fleet().get(id))
    }

    #[test]
    fn sweep_spans_l1_to_dram() {
        let sizes = sweep_sizes();
        assert_eq!(*sizes.first().unwrap(), 4 << 10);
        assert_eq!(*sizes.last().unwrap(), 128 << 20);
        assert!(sizes.windows(2).all(|w| w[0] < w[1]), "ascending");
        assert!(sizes.len() > 20, "enough resolution: {}", sizes.len());
    }

    #[test]
    fn unit_curve_is_monotone_decreasing_ish() {
        let set = maps_for(MachineId::Navo655);
        for w in set.unit.points.windows(2) {
            assert!(
                w[1].1 <= w[0].1 * 1.05,
                "unit curve rises: {:?} -> {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn plateau_matches_stream_and_gups() {
        // §3: the lower-right of the unit curve is the STREAM score; of the
        // random curve, the GUPS score.
        let f = fleet();
        let m = f.get(MachineId::ArlOpteron);
        let set = measure_maps(m);
        let stream = crate::stream::measure_stream(m);
        let gups = crate::gups::measure_gups(m);
        let unit_plateau = set.unit.plateau();
        assert!(
            (unit_plateau - stream.bandwidth).abs() / stream.bandwidth < 0.15,
            "unit plateau {unit_plateau} vs STREAM {}",
            stream.bandwidth
        );
        let random_plateau = set.random.plateau();
        assert!(
            (random_plateau - gups.effective_bandwidth()).abs() / gups.effective_bandwidth() < 0.25,
            "random plateau {random_plateau} vs GUPS {}",
            gups.effective_bandwidth()
        );
    }

    #[test]
    fn interpolation_is_sane() {
        let curve = MapsCurve::new(
            AccessKind::Sequential,
            DependencyFlavor::Independent,
            vec![(1024, 10e9), (4096, 2e9)],
        );
        // Clamps at the ends.
        assert_eq!(curve.bandwidth_at(1), 10e9);
        assert_eq!(curve.bandwidth_at(1 << 30), 2e9);
        // Log-midpoint of 1024..4096 is 2048.
        let mid = curve.bandwidth_at(2048);
        assert!((mid.get() - 6e9).abs() / 6e9 < 1e-9, "got {mid}");
        // Monotone between the ends.
        assert!(curve.bandwidth_at(1500) > curve.bandwidth_at(3000));
    }

    #[test]
    #[should_panic(expected = "empty MAPS curve")]
    fn empty_curve_panics() {
        let curve = MapsCurve::new(
            AccessKind::Sequential,
            DependencyFlavor::Independent,
            vec![],
        );
        let _ = curve.bandwidth_at(1024);
    }

    #[test]
    fn enhanced_curves_are_slower_in_cache() {
        let set = maps_for(MachineId::Navo655);
        // At L1-resident sizes the chained curve must be far below plain.
        let plain = set.unit.bandwidth_at(8 << 10);
        let chained = set.unit_chained.bandwidth_at(8 << 10);
        let branchy = set.unit_branchy.bandwidth_at(8 << 10);
        assert!(chained < 0.5 * plain, "chained {chained} vs {plain}");
        assert!(branchy < plain, "branchy {branchy} vs {plain}");
    }

    #[test]
    fn figure1_crossovers_hold() {
        // Paper Figure 1: Opteron best from main memory; Altix best in the
        // L2 region; p655 best at L1-resident sizes (among those three).
        let p655 = maps_for(MachineId::Navo655);
        let altix = maps_for(MachineId::ArlAltix);
        let opteron = maps_for(MachineId::ArlOpteron);

        let l1 = 16 << 10;
        assert!(p655.unit.bandwidth_at(l1) > opteron.unit.bandwidth_at(l1));

        let l2 = 192 << 10;
        assert!(altix.unit.bandwidth_at(l2) > p655.unit.bandwidth_at(l2));
        assert!(altix.unit.bandwidth_at(l2) > opteron.unit.bandwidth_at(l2));

        let dram = 128 << 20;
        assert!(opteron.unit.bandwidth_at(dram) > altix.unit.bandwidth_at(dram));
        assert!(opteron.unit.bandwidth_at(dram) > p655.unit.bandwidth_at(dram));
    }

    #[test]
    fn curve_selector_routes_flavours() {
        let set = maps_for(MachineId::ArlXeon);
        assert_eq!(set.curve(false, DependencyFlavor::Independent), &set.unit);
        assert_eq!(set.curve(true, DependencyFlavor::Independent), &set.random);
        assert_eq!(
            set.curve(false, DependencyFlavor::Chained),
            &set.unit_chained
        );
        assert_eq!(
            set.curve(false, DependencyFlavor::Branchy),
            &set.unit_branchy
        );
        assert_eq!(
            set.curve(true, DependencyFlavor::Chained),
            &set.random_chained
        );
        assert_eq!(
            set.curve(true, DependencyFlavor::Branchy),
            &set.random_chained
        );
    }
}
