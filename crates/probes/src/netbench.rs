//! The NETBENCH probe: interconnect latency, bandwidth, and `all_reduce`.
//!
//! NETBENCH "determines the interconnect bandwidth and latency" (§1) and
//! provides the `all_reduce` score the IDC balanced-rating comparison uses
//! (§4). Like real MPI microbenchmarks, it measures at the MPI level: the
//! reported latency therefore *includes* per-message software overhead, and
//! the reported bandwidth is the delivered large-message rate, not the wire
//! rate. Metric #8's network term is convolved from these measured values —
//! slightly coarser than the simulator's internal truth, which is one of the
//! organic error sources the study observes.

use serde::{Deserialize, Serialize};

use metasim_machines::MachineConfig;
use metasim_netsim::collectives::allreduce_time;
use metasim_netsim::p2p::ping_pong_time;
use metasim_units::{Bytes, BytesPerSec, Seconds};

/// Measured network characteristics for one machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetbenchResult {
    /// Measured one-way small-message latency, seconds (half the zero-byte
    /// ping-pong round trip; includes software overhead).
    pub latency: Seconds,
    /// Measured large-message bandwidth, bytes/second.
    pub bandwidth: BytesPerSec,
    /// Measured 8-byte `all_reduce` time at 64 processes, seconds — the
    /// balanced-rating category score.
    pub allreduce_64p: Seconds,
}

impl NetbenchResult {
    /// Estimated time for one point-to-point message of `bytes`, using the
    /// *measured* latency/bandwidth (what Metric #8 convolves with).
    #[must_use]
    pub fn p2p_estimate(&self, bytes: u64) -> Seconds {
        self.latency + Bytes::new(bytes as f64) / self.bandwidth
    }

    /// Estimated `all_reduce` time at `p` processes for `bytes`, scaling the
    /// measured 64-process score the way a benchmark consumer would:
    /// logarithmically in `p`, linearly in payload above the measured size.
    #[must_use]
    pub fn allreduce_estimate(&self, p: u64, bytes: u64) -> Seconds {
        if p <= 1 {
            return Seconds::new(0.0);
        }
        let log_scale = ((p as f64).log2() / 6.0).max(0.17); // 64 = 2^6
        let base = self.allreduce_64p * log_scale;
        // Payload beyond the 8-byte measurement moves at measured bandwidth
        // per doubling stage.
        let extra_bytes = bytes.saturating_sub(8) as f64;
        base + Bytes::new((p as f64).log2().ceil() * extra_bytes) / self.bandwidth
    }
}

/// Large-message size used for the bandwidth measurement.
const BW_MESSAGE: u64 = 4 << 20;

/// Run NETBENCH on one machine.
#[must_use]
pub fn measure_netbench(machine: &MachineConfig) -> NetbenchResult {
    let net = &machine.network;
    // Zero-byte ping-pong: latency = RTT/2.
    let latency = ping_pong_time(net, 0) / 2.0;
    // Large-message ping-pong: delivered bandwidth.
    let t = ping_pong_time(net, BW_MESSAGE) / 2.0;
    let bandwidth = Bytes::new(BW_MESSAGE as f64) / t;
    NetbenchResult {
        latency,
        bandwidth,
        allreduce_64p: allreduce_time(net, 64, 8),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metasim_machines::{fleet, MachineId};

    #[test]
    fn measured_latency_includes_overhead() {
        let f = fleet();
        for m in f.all() {
            let r = measure_netbench(m);
            assert!(
                r.latency > m.network.latency,
                "{}: measured latency must include software overhead",
                m.id
            );
            assert!(
                r.latency < m.network.latency * 3.0,
                "{}: but not absurdly",
                m.id
            );
        }
    }

    #[test]
    fn measured_bandwidth_below_wire_rate() {
        let f = fleet();
        for m in f.all() {
            let r = measure_netbench(m);
            assert!(r.bandwidth < m.network.bandwidth, "{}", m.id);
            assert!(r.bandwidth > 0.5 * m.network.bandwidth, "{}", m.id);
        }
    }

    #[test]
    fn family_ordering_survives_measurement() {
        let f = fleet();
        let altix = measure_netbench(f.get(MachineId::ArlAltix));
        let colony = measure_netbench(f.get(MachineId::MhpccP3));
        let federation = measure_netbench(f.get(MachineId::Navo655));
        assert!(altix.latency < colony.latency);
        assert!(federation.bandwidth > colony.bandwidth);
        assert!(altix.allreduce_64p < colony.allreduce_64p);
    }

    #[test]
    fn p2p_estimate_is_affine() {
        let f = fleet();
        let r = measure_netbench(f.get(MachineId::AscSc45));
        let t0 = r.p2p_estimate(0);
        let t1 = r.p2p_estimate(1 << 20);
        assert!((t0 - r.latency).abs() < 1e-15);
        assert!(t1 > t0);
    }

    #[test]
    fn allreduce_estimate_scales() {
        let f = fleet();
        let r = measure_netbench(f.get(MachineId::ArlOpteron));
        assert_eq!(r.allreduce_estimate(1, 8), 0.0);
        assert!(r.allreduce_estimate(256, 8) > r.allreduce_estimate(16, 8));
        assert!(r.allreduce_estimate(64, 1 << 20) > r.allreduce_estimate(64, 8));
        // At the measured configuration the estimate is the measurement.
        assert!((r.allreduce_estimate(64, 8) - r.allreduce_64p).abs() / r.allreduce_64p < 1e-9);
    }
}
