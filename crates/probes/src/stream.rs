//! The STREAM probe: sustainable main-memory unit-stride bandwidth.
//!
//! STREAM's rule is a working set of at least 4× the largest cache; we use
//! 8× (capped at 256 MiB) and drive a unit-stride sweep through the cache
//! simulator, reporting delivered bytes/second.

use serde::{Deserialize, Serialize};

use metasim_machines::MachineConfig;
use metasim_memsim::analytic::{measure_bandwidth_tiered, ResolvedTier};
use metasim_memsim::bandwidth::Workload;
use metasim_memsim::timing::{AccessKind, DependencyMode};
use metasim_units::BytesPerSec;

/// Result of the STREAM probe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamResult {
    /// Working set used, bytes.
    pub working_set: u64,
    /// Delivered bandwidth, bytes/second.
    pub bandwidth: BytesPerSec,
}

impl StreamResult {
    /// Bandwidth in GB/s.
    #[must_use]
    pub fn gb_per_second(&self) -> f64 {
        self.bandwidth.get() / 1e9
    }
}

/// STREAM working set for a machine: 8× the outermost cache, at least
/// 32 MiB, at most 256 MiB.
#[must_use]
pub fn stream_working_set(machine: &MachineConfig) -> u64 {
    let last_cache = machine
        .memory
        .levels
        .last()
        .map_or(1 << 20, |l| l.capacity_bytes);
    (last_cache * 8).clamp(32 << 20, 256 << 20)
}

/// Run the STREAM probe.
#[must_use]
pub fn measure_stream(machine: &MachineConfig) -> StreamResult {
    measure_stream_tiered(machine, ResolvedTier::Exact)
}

/// [`measure_stream`] under an explicit resolved model tier (the exact tier
/// is byte-identical to [`measure_stream`]).
#[must_use]
pub fn measure_stream_tiered(machine: &MachineConfig, tier: ResolvedTier) -> StreamResult {
    let working_set = stream_working_set(machine);
    let (sample, _) = measure_bandwidth_tiered(
        &machine.memory,
        &Workload::new(
            working_set,
            AccessKind::Sequential,
            DependencyMode::Independent,
        ),
        tier.as_tier(),
    );
    StreamResult {
        working_set,
        bandwidth: sample.bytes_per_second(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metasim_machines::{fleet, MachineId};

    #[test]
    fn stream_lands_below_but_near_dram_rate() {
        let f = fleet();
        for m in f.all() {
            let r = measure_stream(m);
            let dram = m.memory.memory.stream_bandwidth;
            assert!(r.bandwidth < dram, "{}: STREAM cannot beat DRAM", m.id);
            assert!(
                r.bandwidth > 0.55 * dram,
                "{}: STREAM {} too far below DRAM {}",
                m.id,
                r.bandwidth,
                dram
            );
        }
    }

    #[test]
    fn working_set_clears_all_caches() {
        let f = fleet();
        for m in f.all() {
            let ws = stream_working_set(m);
            let last = m.memory.levels.last().unwrap().capacity_bytes;
            assert!(ws >= 4 * last, "{}: STREAM rule violated", m.id);
        }
    }

    #[test]
    fn opteron_wins_stream() {
        let f = fleet();
        let opteron = measure_stream(f.get(MachineId::ArlOpteron)).bandwidth;
        for id in MachineId::TARGETS {
            if id != MachineId::ArlOpteron {
                let r = measure_stream(f.get(id)).bandwidth;
                assert!(opteron > r, "{id} out-streams the Opteron?");
            }
        }
    }

    #[test]
    fn gb_conversion() {
        let r = StreamResult {
            working_set: 1,
            bandwidth: BytesPerSec::new(2.5e9),
        };
        assert!((r.gb_per_second() - 2.5).abs() < 1e-12);
    }
}
