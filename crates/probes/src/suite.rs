//! The full probe suite for a machine, measured once and memoized.
//!
//! The study needs every probe result for every machine (Tables 4/5 convolve
//! 1,350 predictions); [`ProbeSuite`] caches per-machine measurements behind
//! a `parking_lot::RwLock` so parallel study drivers measure each machine at
//! most once.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use metasim_machines::{MachineConfig, MachineId};

use crate::gups::{measure_gups, GupsResult};
use crate::hpl::{measure_hpl, HplResult};
use crate::maps::{measure_maps, MapsSet};
use crate::netbench::{measure_netbench, NetbenchResult};
use crate::stream::{measure_stream, StreamResult};

/// Number of processes the fleet-comparable HPL submission uses.
pub const HPL_PROCESSES: u64 = 64;

/// Every probe result for one machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineProbes {
    /// Which machine was measured.
    pub id: MachineId,
    /// HPL result (per-processor Rmax).
    pub hpl: HplResult,
    /// STREAM result.
    pub stream: StreamResult,
    /// GUPS result.
    pub gups: GupsResult,
    /// MAPS and ENHANCED MAPS curves.
    pub maps: MapsSet,
    /// NETBENCH result.
    pub netbench: NetbenchResult,
}

impl MachineProbes {
    /// Measure everything for one machine (expensive: full MAPS sweeps).
    #[must_use]
    pub fn measure(machine: &MachineConfig) -> Self {
        Self {
            id: machine.id,
            hpl: measure_hpl(machine, HPL_PROCESSES),
            stream: measure_stream(machine),
            gups: measure_gups(machine),
            maps: measure_maps(machine),
            netbench: measure_netbench(machine),
        }
    }
}

/// Memoizing probe runner.
#[derive(Debug, Default)]
pub struct ProbeSuite {
    cache: RwLock<HashMap<MachineId, Arc<MachineProbes>>>,
}

impl ProbeSuite {
    /// Fresh suite with an empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Probe results for `machine`, measuring on first request.
    #[must_use]
    pub fn measure(&self, machine: &MachineConfig) -> Arc<MachineProbes> {
        if let Some(hit) = self.cache.read().get(&machine.id) {
            return Arc::clone(hit);
        }
        let probes = Arc::new(MachineProbes::measure(machine));
        let mut guard = self.cache.write();
        Arc::clone(guard.entry(machine.id).or_insert(probes))
    }

    /// Number of machines measured so far.
    #[must_use]
    pub fn measured_count(&self) -> usize {
        self.cache.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metasim_machines::{fleet, MachineId};

    #[test]
    fn suite_memoizes() {
        let f = fleet();
        let suite = ProbeSuite::new();
        let a = suite.measure(f.get(MachineId::ArlXeon));
        let b = suite.measure(f.get(MachineId::ArlXeon));
        assert!(Arc::ptr_eq(&a, &b), "second call must hit the cache");
        assert_eq!(suite.measured_count(), 1);
    }

    #[test]
    fn probes_carry_machine_identity() {
        let f = fleet();
        let suite = ProbeSuite::new();
        let p = suite.measure(f.get(MachineId::ErdcO3800));
        assert_eq!(p.id, MachineId::ErdcO3800);
        assert_eq!(p.hpl.processes, HPL_PROCESSES);
    }

    #[test]
    fn concurrent_measurement_is_safe() {
        let f = Arc::new(fleet());
        let suite = Arc::new(ProbeSuite::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let f = Arc::clone(&f);
                let suite = Arc::clone(&suite);
                std::thread::spawn(move || {
                    let p = suite.measure(f.get(MachineId::AscSc45));
                    p.stream.bandwidth
                })
            })
            .collect();
        let values: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(values.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(suite.measured_count(), 1);
    }
}
