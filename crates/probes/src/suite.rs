//! The full probe suite for a machine, measured once and memoized.
//!
//! The study needs every probe result for every machine (Tables 4/5 convolve
//! 1,350 predictions); [`ProbeSuite`] memoizes per-machine measurements with
//! *single-flight* semantics: each machine gets one once-cell, so concurrent
//! cold callers run exactly one sweep (the rest block on the winner instead
//! of burning a duplicate 5-curve MAPS measurement and discarding it).
//!
//! Optionally the suite is backed by a persistent [`ArtifactStore`]: probe
//! sets load from disk when a valid entry exists (validated on load against
//! the `metasim-audit` MS1xx rules — a corrupt or physically impossible
//! entry is evicted and re-measured) and are written back after measurement.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use metasim_audit::audit_value;
use metasim_cache::{content_key, ArtifactKey, ArtifactStore};
use metasim_machines::{MachineConfig, MachineId};

use crate::audit::audit_probes;

use crate::gups::{measure_gups, GupsResult};
use crate::hpl::{measure_hpl, HplResult};
use crate::maps::{measure_maps, MapsSet};
use crate::netbench::{measure_netbench, NetbenchResult};
use crate::stream::{measure_stream, StreamResult};

/// Number of processes the fleet-comparable HPL submission uses.
pub const HPL_PROCESSES: u64 = 64;

/// Every probe result for one machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineProbes {
    /// Which machine was measured.
    pub id: MachineId,
    /// HPL result (per-processor Rmax).
    pub hpl: HplResult,
    /// STREAM result.
    pub stream: StreamResult,
    /// GUPS result.
    pub gups: GupsResult,
    /// MAPS and ENHANCED MAPS curves.
    pub maps: MapsSet,
    /// NETBENCH result.
    pub netbench: NetbenchResult,
}

impl MachineProbes {
    /// Measure everything for one machine (expensive: full MAPS sweeps).
    #[must_use]
    pub fn measure(machine: &MachineConfig) -> Self {
        Self {
            id: machine.id,
            hpl: measure_hpl(machine, HPL_PROCESSES),
            stream: measure_stream(machine),
            gups: measure_gups(machine),
            maps: measure_maps(machine),
            netbench: measure_netbench(machine),
        }
    }
}

/// Artifact-store kind directory for persisted probe sets.
pub const PROBES_KIND: &str = "probes";

/// Memoizing probe runner with single-flight semantics and an optional
/// persistent backing store.
#[derive(Debug, Default)]
pub struct ProbeSuite {
    cells: RwLock<HashMap<MachineId, Arc<OnceLock<Arc<MachineProbes>>>>>,
    store: Option<Arc<ArtifactStore>>,
    measurements: AtomicUsize,
}

impl ProbeSuite {
    /// Fresh suite with an empty in-process cache and no backing store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Suite backed by a persistent artifact store: probe sets are loaded
    /// from (and written back to) disk, surviving across processes.
    #[must_use]
    pub fn with_store(store: Arc<ArtifactStore>) -> Self {
        Self {
            store: Some(store),
            ..Self::default()
        }
    }

    /// The content key a machine's probe set is stored under: the full
    /// serialized machine configuration, so any spec edit is a cache miss.
    #[must_use]
    pub fn store_key(machine: &MachineConfig) -> ArtifactKey {
        content_key(&[PROBES_KIND], machine)
    }

    /// Probe results for `machine`, measuring on first request.
    ///
    /// Concurrent callers on a cold machine coalesce onto one measurement:
    /// the first caller runs the sweep inside the machine's once-cell while
    /// the rest wait for that same result.
    #[must_use]
    pub fn measure(&self, machine: &MachineConfig) -> Arc<MachineProbes> {
        let cell = {
            let cells = self.cells.read();
            match cells.get(&machine.id) {
                Some(cell) => Arc::clone(cell),
                None => {
                    drop(cells);
                    Arc::clone(self.cells.write().entry(machine.id).or_default())
                }
            }
        };
        Arc::clone(cell.get_or_init(|| {
            if let Some(cached) = self.load_cached(machine) {
                return Arc::new(cached);
            }
            let _span = metasim_obs::recording()
                .then(|| metasim_obs::span(format!("probe-sweep:{}", machine.id)));
            let probes = MachineProbes::measure(machine);
            self.measurements.fetch_add(1, Ordering::Relaxed);
            metasim_obs::counter_add("probes.sweeps", 1);
            if let Some(store) = &self.store {
                let _ = store.store(PROBES_KIND, Self::store_key(machine), &probes);
            }
            Arc::new(probes)
        }))
    }

    /// Audit-on-load: a persisted probe set is trusted only if it claims the
    /// right machine identity and passes the MS1xx physics rules with no
    /// error-severity findings. Anything else is evicted (by the store) and
    /// re-measured.
    fn load_cached(&self, machine: &MachineConfig) -> Option<MachineProbes> {
        let store = self.store.as_ref()?;
        store.load_validated(
            PROBES_KIND,
            Self::store_key(machine),
            |probes: &MachineProbes| {
                if probes.id != machine.id {
                    return Err(format!(
                        "entry claims machine {} but key belongs to {}",
                        probes.id, machine.id
                    ));
                }
                let report = audit_value(|a| audit_probes(machine, probes, a));
                if report.has_errors() {
                    return Err(format!("audit-on-load failed: {}", report.summary_line()));
                }
                Ok(())
            },
        )
    }

    /// Number of machines whose probes are available (measured or loaded).
    #[must_use]
    pub fn measured_count(&self) -> usize {
        self.cells
            .read()
            .values()
            .filter(|cell| cell.get().is_some())
            .count()
    }

    /// Number of full probe sweeps actually executed by this suite (cache
    /// loads do not count). The single-flight guarantee is that this never
    /// exceeds the number of distinct machines requested.
    #[must_use]
    pub fn measurements_performed(&self) -> usize {
        self.measurements.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metasim_machines::{fleet, MachineId};

    #[test]
    fn suite_memoizes() {
        let f = fleet();
        let suite = ProbeSuite::new();
        let a = suite.measure(f.get(MachineId::ArlXeon));
        let b = suite.measure(f.get(MachineId::ArlXeon));
        assert!(Arc::ptr_eq(&a, &b), "second call must hit the cache");
        assert_eq!(suite.measured_count(), 1);
    }

    #[test]
    fn probes_carry_machine_identity() {
        let f = fleet();
        let suite = ProbeSuite::new();
        let p = suite.measure(f.get(MachineId::ErdcO3800));
        assert_eq!(p.id, MachineId::ErdcO3800);
        assert_eq!(p.hpl.processes, HPL_PROCESSES);
    }

    #[test]
    fn concurrent_measurement_is_safe() {
        let f = Arc::new(fleet());
        let suite = Arc::new(ProbeSuite::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let f = Arc::clone(&f);
                let suite = Arc::clone(&suite);
                std::thread::spawn(move || {
                    let p = suite.measure(f.get(MachineId::AscSc45));
                    p.stream.bandwidth
                })
            })
            .collect();
        let values: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(values.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(suite.measured_count(), 1);
    }

    #[test]
    fn concurrent_cold_callers_run_exactly_one_sweep() {
        // Single-flight: four threads racing on a cold machine must coalesce
        // onto ONE full MAPS sweep, not run four and discard three.
        let f = Arc::new(fleet());
        let suite = Arc::new(ProbeSuite::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let f = Arc::clone(&f);
                let suite = Arc::clone(&suite);
                std::thread::spawn(move || suite.measure(f.get(MachineId::ArlOpteron)))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            suite.measurements_performed(),
            1,
            "cold concurrent callers must share a single measurement"
        );
        assert_eq!(suite.measured_count(), 1);
    }

    #[test]
    fn store_backed_suite_round_trips_and_skips_the_sweep() {
        let dir = std::env::temp_dir().join(format!("metasim-probe-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(metasim_cache::ArtifactStore::open(&dir));
        let f = fleet();
        let m = f.get(MachineId::ArlXeon);

        let cold = ProbeSuite::with_store(Arc::clone(&store));
        let fresh = cold.measure(m);
        assert_eq!(cold.measurements_performed(), 1);
        assert!(store.contains(PROBES_KIND, ProbeSuite::store_key(m)));

        // A new suite (fresh process, same store) loads instead of sweeping.
        let warm = ProbeSuite::with_store(Arc::clone(&store));
        let loaded = warm.measure(m);
        assert_eq!(warm.measurements_performed(), 0, "warm run must not sweep");
        assert_eq!(*fresh, *loaded, "cached probes must equal fresh probes");

        // A corrupted entry is evicted and silently re-measured.
        std::fs::write(
            store.entry_path(PROBES_KIND, ProbeSuite::store_key(m)),
            "junk",
        )
        .unwrap();
        let repaired = ProbeSuite::with_store(Arc::clone(&store));
        let again = repaired.measure(m);
        assert_eq!(repaired.measurements_performed(), 1);
        assert_eq!(*fresh, *again);
        store.clear().unwrap();
    }
}
