//! The full probe suite for a machine, measured once and memoized.
//!
//! The study needs every probe result for every machine (Tables 4/5 convolve
//! 1,350 predictions); [`ProbeSuite`] memoizes per-machine measurements with
//! *single-flight* semantics: each machine gets one once-cell, so concurrent
//! cold callers run exactly one sweep (the rest block on the winner instead
//! of burning a duplicate 5-curve MAPS measurement and discarding it).
//!
//! Optionally the suite is backed by a persistent [`ArtifactStore`]: probe
//! sets load from disk when a valid entry exists (validated on load against
//! the `metasim-audit` MS1xx rules — a corrupt or physically impossible
//! entry is evicted and re-measured) and are written back after measurement.
//!
//! The suite is also a fault-injection seam for `metasim-chaos`: an
//! installed [`FaultPlan`](metasim_chaos::FaultPlan) can take a machine
//! down entirely (`outage`), fail measurement attempts transiently
//! (`measure`, wrapped in [`RetryPolicy`] bounded retries), or perturb the
//! measured results multiplicatively (`probe-noise`). Failures surface as
//! typed [`ProbeFailure`]s through [`ProbeSuite::try_measure`] so the study
//! driver can skip a dead machine instead of dying with it. Raw (never
//! perturbed) results are what the store persists.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use metasim_audit::audit_value;
use metasim_cache::{content_key, ArtifactKey, ArtifactStore};
use metasim_chaos::{site, RetryPolicy};
use metasim_machines::{MachineConfig, MachineId};

use crate::audit::audit_probes;

use metasim_memsim::analytic::{resolve_tier, ResolvedTier, Tier};

use crate::gups::{measure_gups_tiered, GupsResult};
use crate::hpl::{measure_hpl, HplResult};
use crate::maps::{measure_maps_tiered, MapsSet};
use crate::netbench::{measure_netbench, NetbenchResult};
use crate::stream::{measure_stream_tiered, StreamResult};

/// Number of processes the fleet-comparable HPL submission uses.
pub const HPL_PROCESSES: u64 = 64;

/// Every probe result for one machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineProbes {
    /// Which machine was measured.
    pub id: MachineId,
    /// HPL result (per-processor Rmax).
    pub hpl: HplResult,
    /// STREAM result.
    pub stream: StreamResult,
    /// GUPS result.
    pub gups: GupsResult,
    /// MAPS and ENHANCED MAPS curves.
    pub maps: MapsSet,
    /// NETBENCH result.
    pub netbench: NetbenchResult,
}

impl MachineProbes {
    /// Measure everything for one machine (expensive: full MAPS sweeps).
    #[must_use]
    pub fn measure(machine: &MachineConfig) -> Self {
        Self::measure_tiered(machine, ResolvedTier::Exact)
    }

    /// Measure under an explicit resolved model tier. The memory-driven
    /// probes (STREAM, GUPS, MAPS) use the requested tier; HPL and NETBENCH
    /// are not memory-simulator-driven and always measure the same way.
    /// The exact tier is byte-identical to [`measure`](Self::measure).
    #[must_use]
    pub fn measure_tiered(machine: &MachineConfig, tier: ResolvedTier) -> Self {
        Self {
            id: machine.id,
            hpl: measure_hpl(machine, HPL_PROCESSES),
            stream: measure_stream_tiered(machine, tier),
            gups: measure_gups_tiered(machine, tier),
            maps: measure_maps_tiered(machine, tier),
            netbench: measure_netbench(machine),
        }
    }
}

/// Artifact-store kind directory for persisted probe sets.
pub const PROBES_KIND: &str = "probes";

/// Why a machine's probe set could not be acquired: an injected outage, or
/// transient measurement failures that exhausted the retry budget. The
/// failure is memoized like a success — every later request for the machine
/// sees the same answer, so one run tells one story.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeFailure {
    /// The machine that could not be measured.
    pub machine: MachineId,
    /// Human-readable cause (outage vs. exhausted retries).
    pub reason: String,
}

impl fmt::Display for ProbeFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "probes unavailable for {}: {}",
            self.machine, self.reason
        )
    }
}

impl std::error::Error for ProbeFailure {}

/// Memoizing probe runner with single-flight semantics and an optional
/// persistent backing store.
#[derive(Debug)]
pub struct ProbeSuite {
    #[allow(clippy::type_complexity)]
    cells: RwLock<HashMap<MachineId, Arc<OnceLock<Result<Arc<MachineProbes>, ProbeFailure>>>>>,
    store: Option<Arc<ArtifactStore>>,
    measurements: AtomicUsize,
    tier: Tier,
}

impl Default for ProbeSuite {
    /// Defaults to [`Tier::Exact`]: existing callers keep byte-identical
    /// results; opting into the analytic fast path is explicit via
    /// [`with_tier`](Self::with_tier).
    fn default() -> Self {
        Self {
            cells: RwLock::default(),
            store: None,
            measurements: AtomicUsize::new(0),
            tier: Tier::Exact,
        }
    }
}

impl ProbeSuite {
    /// Fresh suite with an empty in-process cache and no backing store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Suite backed by a persistent artifact store: probe sets are loaded
    /// from (and written back to) disk, surviving across processes.
    #[must_use]
    pub fn with_store(store: Arc<ArtifactStore>) -> Self {
        Self {
            store: Some(store),
            ..Self::default()
        }
    }

    /// Set the cache-model tier for all subsequent measurements. `Auto`
    /// calibrates per machine spec and falls back to exact when the
    /// analytic model misses [`metasim_memsim::TIER_ERROR_BUDGET`].
    #[must_use]
    pub fn with_tier(mut self, tier: Tier) -> Self {
        self.tier = tier;
        self
    }

    /// The configured cache-model tier.
    #[must_use]
    pub fn tier(&self) -> Tier {
        self.tier
    }

    /// The tier measurements on `machine` would run with (`Auto` resolved
    /// against the machine's spec).
    #[must_use]
    pub fn resolved_tier(&self, machine: &MachineConfig) -> ResolvedTier {
        resolve_tier(&machine.memory, self.tier)
    }

    /// The content key a machine's probe set is stored under: the full
    /// serialized machine configuration, so any spec edit is a cache miss.
    /// This is the exact-tier key — the analytic tier persists under a
    /// tier-tagged sibling ([`store_key_tiered`](Self::store_key_tiered)),
    /// so switching tiers can never serve a model-mismatched artifact.
    #[must_use]
    pub fn store_key(machine: &MachineConfig) -> ArtifactKey {
        Self::store_key_tiered(machine, ResolvedTier::Exact)
    }

    /// The content key for a machine's probe set under a resolved tier.
    #[must_use]
    pub fn store_key_tiered(machine: &MachineConfig, tier: ResolvedTier) -> ArtifactKey {
        match tier {
            ResolvedTier::Exact => content_key(&[PROBES_KIND], machine),
            ResolvedTier::Analytic => content_key(&[PROBES_KIND, "analytic"], machine),
        }
    }

    /// Probe results for `machine`, measuring on first request.
    ///
    /// Concurrent callers on a cold machine coalesce onto one measurement:
    /// the first caller runs the sweep inside the machine's once-cell while
    /// the rest wait for that same result.
    ///
    /// Panics if the machine cannot be measured (only possible under an
    /// installed fault plan); robustness-aware callers use
    /// [`try_measure`](Self::try_measure) instead.
    #[must_use]
    pub fn measure(&self, machine: &MachineConfig) -> Arc<MachineProbes> {
        self.try_measure(machine).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`measure`](Self::measure): `Err` when an installed
    /// fault plan makes the machine unreachable (outage) or fails every
    /// measurement attempt in the retry budget. The outcome — success or
    /// failure — is memoized once per machine.
    pub fn try_measure(&self, machine: &MachineConfig) -> Result<Arc<MachineProbes>, ProbeFailure> {
        let cell = {
            let cells = self.cells.read();
            match cells.get(&machine.id) {
                Some(cell) => Arc::clone(cell),
                None => {
                    drop(cells);
                    Arc::clone(self.cells.write().entry(machine.id).or_default())
                }
            }
        };
        cell.get_or_init(|| self.acquire(machine)).clone()
    }

    /// One acquisition: outage gate, retried transient-failure gate, then
    /// cache-load-or-measure. The store always receives the *raw*
    /// measurement; any probe-noise perturbation is applied after, so a
    /// warm (cache-hit) chaos run sees exactly the values a cold one did.
    fn acquire(&self, machine: &MachineConfig) -> Result<Arc<MachineProbes>, ProbeFailure> {
        let label = machine.id.label();
        if metasim_chaos::fires(site::OUTAGE, &[label]) {
            metasim_obs::counter_add("chaos.outage", 1);
            return Err(ProbeFailure {
                machine: machine.id,
                reason: "machine unreachable (injected outage)".to_string(),
            });
        }
        RetryPolicy::default().run(|attempt| {
            if metasim_chaos::fires(site::MEASURE, &[label, &attempt.to_string()]) {
                Err(ProbeFailure {
                    machine: machine.id,
                    reason: format!("transient measurement failure (attempt {attempt})"),
                })
            } else {
                Ok(())
            }
        })?;
        let tier = self.resolved_tier(machine);
        let probes = if let Some(cached) = self.load_cached(machine, tier) {
            cached
        } else {
            let span = metasim_obs::recording()
                .then(|| metasim_obs::span(format!("probe-sweep:{}", machine.id)));
            let probes = MachineProbes::measure_tiered(machine, tier);
            self.measurements.fetch_add(1, Ordering::Relaxed);
            metasim_obs::counter_add("probes.sweeps", 1);
            if let Some(span) = span {
                metasim_obs::observe_hdr(metasim_obs::hdr::LAT_PROBE_SWEEP, span.finish());
            }
            if let Some(store) = &self.store {
                let _ = store.store(PROBES_KIND, Self::store_key_tiered(machine, tier), &probes);
            }
            probes
        };
        Ok(Arc::new(apply_probe_noise(machine, probes)))
    }

    /// Audit-on-load: a persisted probe set is trusted only if it claims the
    /// right machine identity and passes the MS1xx physics rules with no
    /// error-severity findings. Anything else is evicted (by the store) and
    /// re-measured.
    fn load_cached(&self, machine: &MachineConfig, tier: ResolvedTier) -> Option<MachineProbes> {
        let store = self.store.as_ref()?;
        store.load_validated(
            PROBES_KIND,
            Self::store_key_tiered(machine, tier),
            |probes: &MachineProbes| {
                if probes.id != machine.id {
                    return Err(format!(
                        "entry claims machine {} but key belongs to {}",
                        probes.id, machine.id
                    ));
                }
                let report = audit_value(|a| audit_probes(machine, probes, a));
                if report.has_errors() {
                    return Err(format!("audit-on-load failed: {}", report.summary_line()));
                }
                Ok(())
            },
        )
    }

    /// Number of machines whose probes are available (measured or loaded);
    /// machines memoized as failed do not count.
    #[must_use]
    pub fn measured_count(&self) -> usize {
        self.cells
            .read()
            .values()
            .filter(|cell| cell.get().is_some_and(Result::is_ok))
            .count()
    }

    /// Number of full probe sweeps actually executed by this suite (cache
    /// loads do not count). The single-flight guarantee is that this never
    /// exceeds the number of distinct machines requested.
    #[must_use]
    pub fn measurements_performed(&self) -> usize {
        self.measurements.load(Ordering::Relaxed)
    }
}

/// Apply the installed fault plan's `probe-noise` perturbation to a freshly
/// acquired probe set. With no plan installed (or a plan without a
/// `ProbeNoise` fault) this is the identity — not even a `* 1.0` touches
/// the values, so fault-free results stay bit-identical.
///
/// Factors are drawn per probe *family*, not per individual value, because
/// the MS1xx physics rules relate values to each other: all five MAPS
/// curves, STREAM, and GUPS share one memory-subsystem factor (uniform
/// scaling preserves the MS102 monotonicity and MS103/MS104 dominance
/// invariants), and the perturbed HPL Rmax is clamped to the machine's
/// theoretical peak so MS105 keeps holding.
fn apply_probe_noise(machine: &MachineConfig, mut probes: MachineProbes) -> MachineProbes {
    if !metasim_chaos::active() {
        return probes;
    }
    let label = machine.id.label();
    let factor_for = |family: &str| {
        metasim_chaos::factor(site::PROBE_NOISE, &[family, label]).max(f64::MIN_POSITIVE)
    };

    let f_hpl = factor_for("hpl");
    if f_hpl != 1.0 {
        let peak = machine.processor.peak_gflops();
        let rmax = probes.hpl.rmax_gflops_per_proc.get();
        let clamped = (rmax * f_hpl).min(peak);
        // Keep rate and solve time consistent: time scales inversely with
        // the rate the perturbation actually achieved.
        probes.hpl.rmax_gflops_per_proc = metasim_units::Gflops::new(clamped);
        probes.hpl.seconds = probes.hpl.seconds / (clamped / rmax);
    }

    let f_mem = factor_for("memory");
    if f_mem != 1.0 {
        probes.stream.bandwidth = probes.stream.bandwidth * f_mem;
        probes.gups.updates_per_second = probes.gups.updates_per_second * f_mem;
        for curve in [
            &mut probes.maps.unit,
            &mut probes.maps.random,
            &mut probes.maps.unit_chained,
            &mut probes.maps.unit_branchy,
            &mut probes.maps.random_chained,
        ] {
            for point in &mut curve.points {
                point.1 *= f_mem;
            }
        }
    }

    let f_net = factor_for("netbench");
    if f_net != 1.0 {
        // A slower fabric delivers less bandwidth and takes longer per
        // message, so times scale inversely with the rate factor.
        probes.netbench.bandwidth = probes.netbench.bandwidth * f_net;
        probes.netbench.latency = probes.netbench.latency / f_net;
        probes.netbench.allreduce_64p = probes.netbench.allreduce_64p / f_net;
    }
    probes
}

#[cfg(test)]
mod tests {
    use super::*;
    use metasim_machines::{fleet, MachineId};

    #[test]
    fn suite_memoizes() {
        let f = fleet();
        let suite = ProbeSuite::new();
        let a = suite.measure(f.get(MachineId::ArlXeon));
        let b = suite.measure(f.get(MachineId::ArlXeon));
        assert!(Arc::ptr_eq(&a, &b), "second call must hit the cache");
        assert_eq!(suite.measured_count(), 1);
    }

    #[test]
    fn probes_carry_machine_identity() {
        let f = fleet();
        let suite = ProbeSuite::new();
        let p = suite.measure(f.get(MachineId::ErdcO3800));
        assert_eq!(p.id, MachineId::ErdcO3800);
        assert_eq!(p.hpl.processes, HPL_PROCESSES);
    }

    #[test]
    fn concurrent_measurement_is_safe() {
        let f = Arc::new(fleet());
        let suite = Arc::new(ProbeSuite::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let f = Arc::clone(&f);
                let suite = Arc::clone(&suite);
                std::thread::spawn(move || {
                    let p = suite.measure(f.get(MachineId::AscSc45));
                    p.stream.bandwidth
                })
            })
            .collect();
        let values: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(values.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(suite.measured_count(), 1);
    }

    #[test]
    fn concurrent_cold_callers_run_exactly_one_sweep() {
        // Single-flight: four threads racing on a cold machine must coalesce
        // onto ONE full MAPS sweep, not run four and discard three.
        let f = Arc::new(fleet());
        let suite = Arc::new(ProbeSuite::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let f = Arc::clone(&f);
                let suite = Arc::clone(&suite);
                std::thread::spawn(move || suite.measure(f.get(MachineId::ArlOpteron)))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            suite.measurements_performed(),
            1,
            "cold concurrent callers must share a single measurement"
        );
        assert_eq!(suite.measured_count(), 1);
    }

    #[test]
    fn store_backed_suite_round_trips_and_skips_the_sweep() {
        let dir = std::env::temp_dir().join(format!("metasim-probe-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(metasim_cache::ArtifactStore::open(&dir));
        let f = fleet();
        let m = f.get(MachineId::ArlXeon);

        let cold = ProbeSuite::with_store(Arc::clone(&store));
        let fresh = cold.measure(m);
        assert_eq!(cold.measurements_performed(), 1);
        assert!(store.contains(PROBES_KIND, ProbeSuite::store_key(m)));

        // A new suite (fresh process, same store) loads instead of sweeping.
        let warm = ProbeSuite::with_store(Arc::clone(&store));
        let loaded = warm.measure(m);
        assert_eq!(warm.measurements_performed(), 0, "warm run must not sweep");
        assert_eq!(*fresh, *loaded, "cached probes must equal fresh probes");

        // A corrupted entry is evicted and silently re-measured.
        std::fs::write(
            store.entry_path(PROBES_KIND, ProbeSuite::store_key(m)),
            "junk",
        )
        .unwrap();
        let repaired = ProbeSuite::with_store(Arc::clone(&store));
        let again = repaired.measure(m);
        assert_eq!(repaired.measurements_performed(), 1);
        assert_eq!(*fresh, *again);
        store.clear().unwrap();
    }

    mod chaos {
        use super::*;
        use metasim_chaos::{with_plan, FaultPlan};
        use metasim_obs::{with_recorder, InMemoryRecorder};

        fn plan(seed: u64, spec: &str) -> Arc<FaultPlan> {
            Arc::new(FaultPlan::parse_spec(seed, spec).unwrap())
        }

        #[test]
        fn outage_is_a_typed_failure_not_a_panic() {
            let f = fleet();
            let suite = ProbeSuite::new();
            let failure = with_plan(plan(1, "outage:ARL_Xeon"), || {
                suite.try_measure(f.get(MachineId::ArlXeon)).unwrap_err()
            });
            assert_eq!(failure.machine, MachineId::ArlXeon);
            assert!(failure.reason.contains("outage"), "{failure}");
            // The failure memoizes: still down even after the plan is gone.
            assert!(suite.try_measure(f.get(MachineId::ArlXeon)).is_err());
            assert_eq!(suite.measured_count(), 0);
            // Other machines are unaffected.
            assert!(suite.try_measure(f.get(MachineId::NavoP3)).is_ok());
        }

        #[test]
        fn empty_plan_is_byte_identical_to_no_plan() {
            let f = fleet();
            let m = f.get(MachineId::AscSc45);
            let bare = ProbeSuite::new().measure(m);
            let under_empty_plan = with_plan(plan(42, ""), || ProbeSuite::new().measure(m));
            assert_eq!(
                *bare, *under_empty_plan,
                "an installed empty plan must not move a single value"
            );
        }

        #[test]
        fn noise_perturbs_deterministically_and_stays_physical() {
            let f = fleet();
            let m = f.get(MachineId::ErdcO3800);
            let raw = ProbeSuite::new().measure(m);
            let noisy_a = with_plan(plan(7, "probe-noise:0.05"), || ProbeSuite::new().measure(m));
            let noisy_b = with_plan(plan(7, "probe-noise:0.05"), || ProbeSuite::new().measure(m));
            assert_eq!(*noisy_a, *noisy_b, "same seed, same perturbation");
            assert_ne!(*raw, *noisy_a, "sigma 0.05 must actually perturb");
            let report = audit_value(|a| crate::audit::audit_probes(m, &noisy_a, a));
            assert!(
                report.is_clean(),
                "perturbed probes must still pass the MS1xx physics rules: {}",
                report.summary_line()
            );
        }

        #[test]
        fn transient_failures_recover_and_are_counted() {
            let f = fleet();
            let m = f.get(MachineId::Navo655);
            // Find a seed whose first measure attempt fails and second
            // succeeds — decisions are pure, so this scan is deterministic.
            let seed = (0..10_000u64)
                .find(|&s| {
                    let p = FaultPlan::parse_spec(s, "measure-fail:0.5").unwrap();
                    use metasim_chaos::{site, FaultPoint};
                    let lbl = m.id.label();
                    p.fires(site::MEASURE, &[lbl, "1"]) && !p.fires(site::MEASURE, &[lbl, "2"])
                })
                .expect("some seed fails once then recovers");
            let rec = Arc::new(InMemoryRecorder::new());
            let raw = ProbeSuite::new().measure(m);
            let recovered = with_recorder(rec.clone(), || {
                with_plan(plan(seed, "measure-fail:0.5"), || {
                    ProbeSuite::new().measure(m)
                })
            });
            assert_eq!(*raw, *recovered, "no noise fault → values untouched");
            let snap = rec.metrics_snapshot();
            assert_eq!(snap.counter("chaos.retry.attempts"), 1);
            assert_eq!(snap.counter("chaos.retry.recovered"), 1);
            assert_eq!(snap.counter("chaos.retry.exhausted"), 0);
            assert_eq!(snap.counter("chaos.retry.backoff_ms"), 10);
        }

        #[test]
        fn exhausted_retries_fail_the_machine() {
            let f = fleet();
            let rec = Arc::new(InMemoryRecorder::new());
            let result = with_recorder(rec.clone(), || {
                with_plan(plan(3, "measure-fail:1.0"), || {
                    ProbeSuite::new().try_measure(f.get(MachineId::MhpccP3))
                })
            });
            let failure = result.unwrap_err();
            assert!(failure.reason.contains("attempt 3"), "{failure}");
            let snap = rec.metrics_snapshot();
            assert_eq!(snap.counter("chaos.retry.attempts"), 2);
            assert_eq!(snap.counter("chaos.retry.exhausted"), 1);
        }

        #[test]
        fn store_persists_raw_results_under_noise() {
            let dir = std::env::temp_dir()
                .join(format!("metasim-chaos-probe-store-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let store = Arc::new(metasim_cache::ArtifactStore::open(&dir));
            let f = fleet();
            let m = f.get(MachineId::Mhpcc690_13);
            let raw = ProbeSuite::new().measure(m);

            // Cold chaos run: measures, stores, perturbs.
            let cold = with_plan(plan(11, "probe-noise:0.05"), || {
                ProbeSuite::with_store(Arc::clone(&store)).measure(m)
            });
            // Warm chaos run: loads the stored entry, perturbs identically.
            let warm_suite = ProbeSuite::with_store(Arc::clone(&store));
            let warm = with_plan(plan(11, "probe-noise:0.05"), || warm_suite.measure(m));
            assert_eq!(warm_suite.measurements_performed(), 0, "warm must load");
            assert_eq!(*cold, *warm, "cold and warm chaos runs must agree");

            // The disk entry itself is the raw, unperturbed measurement.
            let persisted = ProbeSuite::with_store(Arc::clone(&store)).measure(m);
            assert_eq!(*raw, *persisted, "the store must never see noise");
            store.clear().unwrap();
        }
    }
}
