//! Property-based tests for the probe layer.

use metasim_machines::{fleet, MachineId};
use metasim_memsim::timing::AccessKind;
use metasim_probes::maps::{DependencyFlavor, MapsCurve};
use metasim_probes::suite::ProbeSuite;
use proptest::prelude::*;
use std::sync::OnceLock;

fn any_target() -> impl Strategy<Value = MachineId> {
    (0usize..10).prop_map(|i| MachineId::TARGETS[i])
}

/// Probe measurements are expensive; share one suite across all cases.
fn suite() -> &'static ProbeSuite {
    static SUITE: OnceLock<ProbeSuite> = OnceLock::new();
    SUITE.get_or_init(ProbeSuite::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Curve interpolation always stays within the envelope of measured
    // bandwidths.
    #[test]
    fn interpolation_stays_in_envelope(id in any_target(), ws in 1u64..1<<28) {
        let f = fleet();
        let probes = suite().measure(f.get(id));
        let curve = &probes.maps.unit;
        let lo = curve.points.iter().map(|&(_, b)| b).fold(f64::INFINITY, f64::min);
        let hi = curve.points.iter().map(|&(_, b)| b).fold(0.0f64, f64::max);
        let v = curve.bandwidth_at(ws);
        prop_assert!(v >= lo * 0.999 && v <= hi * 1.001, "{id}: {v} outside [{lo}, {hi}]");
    }

    // Enhanced (chained) curves never beat the plain curve at any size.
    #[test]
    fn chained_curve_never_faster(id in any_target(), ws in 4u64..1<<27) {
        let f = fleet();
        let probes = suite().measure(f.get(id));
        let plain = probes.maps.curve(false, DependencyFlavor::Independent).bandwidth_at(ws);
        let chained = probes.maps.curve(false, DependencyFlavor::Chained).bandwidth_at(ws);
        prop_assert!(chained <= plain * 1.01, "{id} at {ws}: chained {chained} vs plain {plain}");
    }

    // Random curves never beat unit-stride curves at any size.
    #[test]
    fn random_never_beats_unit(id in any_target(), ws in 4u64..1<<27) {
        let f = fleet();
        let probes = suite().measure(f.get(id));
        let unit = probes.maps.unit.bandwidth_at(ws);
        let random = probes.maps.random.bandwidth_at(ws);
        prop_assert!(random <= unit * 1.01, "{id} at {ws}");
    }
}

#[test]
fn curve_interpolation_is_continuous_at_knots() {
    let curve = MapsCurve::new(
        AccessKind::Sequential,
        DependencyFlavor::Independent,
        vec![(1 << 12, 8e9), (1 << 14, 4e9), (1 << 18, 1e9)],
    );
    for &(ws, bw) in &curve.points {
        assert!((curve.bandwidth_at(ws).get() - bw).abs() / bw < 1e-9);
        // One byte either side is close.
        assert!((curve.bandwidth_at(ws + 1).get() - bw).abs() / bw < 0.01);
        assert!((curve.bandwidth_at(ws - 1).get() - bw).abs() / bw < 0.01);
    }
}

#[test]
fn hpl_rmax_ordering_is_deterministic() {
    let f = fleet();
    let a: Vec<_> = MachineId::TARGETS
        .iter()
        .map(|&id| suite().measure(f.get(id)).hpl.rmax_gflops_per_proc)
        .collect();
    let fresh = ProbeSuite::new();
    let b: Vec<_> = MachineId::TARGETS
        .iter()
        .map(|&id| fresh.measure(f.get(id)).hpl.rmax_gflops_per_proc)
        .collect();
    assert_eq!(a, b);
}
