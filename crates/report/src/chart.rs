//! ASCII charts: grouped bar charts (the paper's Figures 2–7) and simple
//! line charts (Figure 1's MAPS curves) for terminal output.

/// One labelled group of bars (e.g. one CPU count with nine metric bars).
#[derive(Debug, Clone)]
pub struct BarGroup {
    /// Group label.
    pub label: String,
    /// `(bar label, value)` pairs.
    pub bars: Vec<(String, f64)>,
}

/// Render a horizontal grouped bar chart. Values must be non-negative.
#[must_use]
pub fn ascii_bar_chart(title: &str, groups: &[BarGroup], width: usize) -> String {
    let max = groups
        .iter()
        .flat_map(|g| g.bars.iter().map(|(_, v)| *v))
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let label_w = groups
        .iter()
        .flat_map(|g| g.bars.iter().map(|(l, _)| l.len()))
        .max()
        .unwrap_or(0);

    let mut out = format!("{title}\n");
    for g in groups {
        out.push_str(&format!("[{}]\n", g.label));
        for (label, value) in &g.bars {
            debug_assert!(*value >= 0.0, "bar values must be non-negative");
            let n = ((value / max) * width as f64).round() as usize;
            out.push_str(&format!(
                "  {label:<label_w$} |{} {}\n",
                "#".repeat(n),
                crate::table::f1(*value)
            ));
        }
    }
    out
}

/// One line-chart series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Series name (legend).
    pub name: String,
    /// `(x, y)` points, ascending x.
    pub points: Vec<(f64, f64)>,
}

/// Render a multi-series line chart on a character grid with log-x
/// (message sizes) and linear-y axes. Each series plots with its own glyph.
#[must_use]
pub fn ascii_line_chart(title: &str, series: &[Series], cols: usize, rows: usize) -> String {
    const GLYPHS: [char; 8] = ['*', 'o', '+', 'x', '@', '%', '^', '~'];
    let (mut x_lo, mut x_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    let mut y_hi = f64::NEG_INFINITY;
    for s in series {
        for &(x, y) in &s.points {
            x_lo = x_lo.min(x);
            x_hi = x_hi.max(x);
            y_hi = y_hi.max(y);
        }
    }
    if !x_lo.is_finite() || x_hi <= x_lo || y_hi <= 0.0 {
        return format!("{title}\n(no data)\n");
    }

    let mut grid = vec![vec![' '; cols]; rows];
    let lx_lo = x_lo.ln();
    let lx_hi = x_hi.ln();
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in &s.points {
            let cx = (((x.ln() - lx_lo) / (lx_hi - lx_lo)) * (cols - 1) as f64).round() as usize;
            let cy = ((y / y_hi) * (rows - 1) as f64).round() as usize;
            let row = rows - 1 - cy.min(rows - 1);
            grid[row][cx.min(cols - 1)] = glyph;
        }
    }

    let mut out = format!("{title}\n");
    for (i, row) in grid.iter().enumerate() {
        let y_label = if i == 0 {
            format!("{y_hi:9.2e}")
        } else if i == rows - 1 {
            format!("{:9.2e}", 0.0)
        } else {
            " ".repeat(9)
        };
        out.push_str(&format!("{y_label} |{}\n", row.iter().collect::<String>()));
    }
    out.push_str(&format!(
        "{} +{}\n{} {x_lo:.0} .. {x_hi:.0} (log x)\n",
        " ".repeat(9),
        "-".repeat(cols),
        " ".repeat(9),
    ));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!(
            "{} {} = {}\n",
            " ".repeat(9),
            GLYPHS[si % GLYPHS.len()],
            s.name
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_chart_scales_to_width() {
        let groups = vec![BarGroup {
            label: "32 cpus".into(),
            bars: vec![("HPL".into(), 50.0), ("STREAM".into(), 25.0)],
        }];
        let s = ascii_bar_chart("Figure 3", &groups, 40);
        assert!(s.contains("Figure 3"));
        assert!(s.contains("[32 cpus]"));
        let hpl_hashes = s
            .lines()
            .find(|l| l.contains("HPL"))
            .unwrap()
            .matches('#')
            .count();
        let stream_hashes = s
            .lines()
            .find(|l| l.contains("STREAM"))
            .unwrap()
            .matches('#')
            .count();
        assert_eq!(hpl_hashes, 40, "max bar fills the width");
        assert_eq!(stream_hashes, 20, "half value, half width");
    }

    #[test]
    fn line_chart_places_extremes() {
        let series = vec![Series {
            name: "unit".into(),
            points: vec![(1024.0, 1.0), (1_048_576.0, 10.0)],
        }];
        let s = ascii_line_chart("Figure 1", &series, 40, 10);
        assert!(s.contains("Figure 1"));
        assert!(s.contains("* = unit"));
        // The max-y point lands on the top row.
        let first_grid_line = s.lines().nth(1).unwrap();
        assert!(first_grid_line.contains('*'));
    }

    #[test]
    fn empty_series_does_not_panic() {
        let s = ascii_line_chart("empty", &[], 20, 5);
        assert!(s.contains("no data"));
    }

    #[test]
    fn multiple_series_get_distinct_glyphs() {
        let mk = |name: &str, y: f64| Series {
            name: name.into(),
            points: vec![(10.0, y), (100.0, y * 2.0)],
        };
        let s = ascii_line_chart("t", &[mk("a", 1.0), mk("b", 2.0)], 30, 8);
        assert!(s.contains("* = a"));
        assert!(s.contains("o = b"));
    }
}
