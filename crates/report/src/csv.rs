//! Minimal CSV emission (RFC-4180 quoting) for experiment outputs.

/// A CSV document builder.
#[derive(Debug, Clone, Default)]
pub struct CsvWriter {
    buf: String,
    columns: Option<usize>,
}

fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

impl CsvWriter {
    /// Fresh, empty document.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one row; the first row fixes the arity.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) {
        match self.columns {
            None => self.columns = Some(cells.len()),
            Some(n) => assert_eq!(n, cells.len(), "CSV row arity"),
        }
        let line: Vec<String> = cells.iter().map(|c| escape(c.as_ref())).collect();
        self.buf.push_str(&line.join(","));
        self.buf.push('\n');
    }

    /// Append a row of floats with full precision.
    pub fn float_row<S: AsRef<str>>(&mut self, label: S, values: &[f64]) {
        let mut cells = vec![label.as_ref().to_string()];
        cells.extend(values.iter().map(|v| format!("{v}")));
        self.row(&cells);
    }

    /// The finished document.
    #[must_use]
    pub fn finish(self) -> String {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_rows() {
        let mut w = CsvWriter::new();
        w.row(&["a", "b"]);
        w.row(&["1", "2"]);
        assert_eq!(w.finish(), "a,b\n1,2\n");
    }

    #[test]
    fn quoting_rules() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("has,comma"), "\"has,comma\"");
        assert_eq!(escape("has\"quote"), "\"has\"\"quote\"");
        assert_eq!(escape("multi\nline"), "\"multi\nline\"");
    }

    #[test]
    fn float_rows_preserve_precision() {
        let mut w = CsvWriter::new();
        w.float_row("x", &[1.5, 0.125]);
        assert_eq!(w.finish(), "x,1.5,0.125\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_is_enforced() {
        let mut w = CsvWriter::new();
        w.row(&["a", "b"]);
        w.row(&["only"]);
    }
}
