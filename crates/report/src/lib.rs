//! Rendering for metasim experiment outputs: aligned ASCII tables, CSV,
//! ASCII bar/line charts, and minimal SVG — everything the CLI and benches
//! use to print the paper's tables and figures.

pub mod chart;
pub mod csv;
pub mod svg;
pub mod table;

pub use chart::{ascii_bar_chart, ascii_line_chart, BarGroup, Series};
pub use csv::CsvWriter;
pub use svg::line_chart_svg;
pub use table::Table;
