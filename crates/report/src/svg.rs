//! Minimal SVG line-chart emission, for regenerating Figure 1 as a
//! publishable artifact.

use crate::chart::Series;

const PALETTE: [&str; 6] = [
    "#4269d0", "#efb118", "#ff725c", "#6cc5b0", "#3ca951", "#9c6b4e",
];

/// Render series as an SVG line chart with log-x and linear-y axes.
#[must_use]
pub fn line_chart_svg(
    title: &str,
    x_label: &str,
    y_label: &str,
    series: &[Series],
    width: u32,
    height: u32,
) -> String {
    let (ml, mr, mt, mb) = (70.0, 20.0, 40.0, 50.0);
    let plot_w = f64::from(width) - ml - mr;
    let plot_h = f64::from(height) - mt - mb;

    let (mut x_lo, mut x_hi, mut y_hi) = (f64::INFINITY, f64::NEG_INFINITY, 0.0f64);
    for s in series {
        for &(x, y) in &s.points {
            x_lo = x_lo.min(x);
            x_hi = x_hi.max(x);
            y_hi = y_hi.max(y);
        }
    }
    if !x_lo.is_finite() || x_hi <= x_lo || y_hi <= 0.0 {
        return format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{height}\">\
             <text x=\"10\" y=\"20\">{title}: no data</text></svg>"
        );
    }
    let (lx_lo, lx_hi) = (x_lo.ln(), x_hi.ln());
    let px = |x: f64| ml + (x.ln() - lx_lo) / (lx_hi - lx_lo) * plot_w;
    let py = |y: f64| mt + (1.0 - y / y_hi) * plot_h;

    let mut svg = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{height}\" \
         font-family=\"sans-serif\" font-size=\"12\">\n\
         <text x=\"{tx}\" y=\"22\" font-size=\"15\" text-anchor=\"middle\">{title}</text>\n\
         <rect x=\"{ml}\" y=\"{mt}\" width=\"{plot_w}\" height=\"{plot_h}\" \
         fill=\"none\" stroke=\"#999\"/>\n\
         <text x=\"{tx}\" y=\"{by}\" text-anchor=\"middle\">{x_label}</text>\n\
         <text x=\"16\" y=\"{my}\" text-anchor=\"middle\" \
         transform=\"rotate(-90 16 {my})\">{y_label}</text>\n",
        tx = f64::from(width) / 2.0,
        by = f64::from(height) - 12.0,
        my = mt + plot_h / 2.0,
    );

    for (i, s) in series.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        let path: Vec<String> = s
            .points
            .iter()
            .enumerate()
            .map(|(j, &(x, y))| {
                let cmd = if j == 0 { 'M' } else { 'L' };
                format!("{cmd}{:.1},{:.1}", px(x), py(y))
            })
            .collect();
        svg.push_str(&format!(
            "<path d=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"2\"/>\n",
            path.join(" ")
        ));
        svg.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" fill=\"{color}\">{}</text>\n",
            ml + 8.0,
            mt + 16.0 + 16.0 * i as f64,
            s.name
        ));
    }
    svg.push_str("</svg>\n");
    svg
}

/// Render labelled bars (Figure 2's error-by-metric chart) as SVG.
#[must_use]
pub fn bar_chart_svg(
    title: &str,
    y_label: &str,
    bars: &[(String, f64)],
    width: u32,
    height: u32,
) -> String {
    let (ml, mr, mt, mb) = (60.0, 20.0, 40.0, 90.0);
    let plot_w = f64::from(width) - ml - mr;
    let plot_h = f64::from(height) - mt - mb;
    let max = bars.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
    if bars.is_empty() || max <= 0.0 {
        return format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{height}\">\
             <text x=\"10\" y=\"20\">{title}: no data</text></svg>"
        );
    }
    let slot = plot_w / bars.len() as f64;
    let bar_w = slot * 0.7;

    let mut svg = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{height}\" \
         font-family=\"sans-serif\" font-size=\"12\">\n\
         <text x=\"{tx}\" y=\"22\" font-size=\"15\" text-anchor=\"middle\">{title}</text>\n\
         <text x=\"16\" y=\"{my}\" text-anchor=\"middle\" \
         transform=\"rotate(-90 16 {my})\">{y_label}</text>\n",
        tx = f64::from(width) / 2.0,
        my = mt + plot_h / 2.0,
    );
    for (i, (label, value)) in bars.iter().enumerate() {
        let x = ml + slot * i as f64 + (slot - bar_w) / 2.0;
        let h = value / max * plot_h;
        let y = mt + plot_h - h;
        let color = PALETTE[i % PALETTE.len()];
        svg.push_str(&format!(
            "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{bar_w:.1}\" height=\"{h:.1}\" fill=\"{color}\"/>\n\
             <text x=\"{vx:.1}\" y=\"{vy:.1}\" text-anchor=\"middle\">{value_label}</text>\n\
             <text x=\"{lx:.1}\" y=\"{ly:.1}\" text-anchor=\"end\" \
             transform=\"rotate(-45 {lx:.1} {ly:.1})\">{label}</text>\n",
            value_label = crate::table::f1(*value),
            vx = x + bar_w / 2.0,
            vy = y - 4.0,
            lx = x + bar_w / 2.0,
            ly = mt + plot_h + 14.0,
        ));
    }
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_series() -> Vec<Series> {
        vec![
            Series {
                name: "p655".into(),
                points: vec![(4096.0, 20e9), (1e6, 10e9), (1e8, 2e9)],
            },
            Series {
                name: "Opteron".into(),
                points: vec![(4096.0, 15e9), (1e6, 8e9), (1e8, 2.5e9)],
            },
        ]
    }

    #[test]
    fn svg_is_well_formed_enough() {
        let svg = line_chart_svg("Figure 1", "size", "GB/s", &demo_series(), 640, 400);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<path").count(), 2);
        assert!(svg.contains("p655"));
        assert!(svg.contains("Opteron"));
        assert!(svg.contains("Figure 1"));
    }

    #[test]
    fn empty_input_yields_placeholder() {
        let svg = line_chart_svg("t", "x", "y", &[], 100, 100);
        assert!(svg.contains("no data"));
    }

    #[test]
    fn bar_chart_draws_all_bars() {
        let bars: Vec<(String, f64)> = vec![
            ("HPL".into(), 63.0),
            ("STREAM".into(), 43.0),
            ("GUPS".into(), 33.0),
        ];
        let svg = bar_chart_svg("Figure 2", "error %", &bars, 640, 400);
        assert_eq!(svg.matches("<rect").count(), 3);
        assert!(svg.contains("HPL"));
        assert!(svg.contains("63"));
        assert!(svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn bar_chart_empty_is_placeholder() {
        let svg = bar_chart_svg("t", "y", &[], 100, 100);
        assert!(svg.contains("no data"));
    }

    #[test]
    fn paths_stay_inside_canvas() {
        let svg = line_chart_svg("t", "x", "y", &demo_series(), 640, 400);
        for cap in svg.split('"').filter(|s| s.starts_with('M')) {
            for pair in cap.split(' ') {
                let coords: Vec<f64> = pair[1..]
                    .split(',')
                    .filter_map(|v| v.parse().ok())
                    .collect();
                if coords.len() == 2 {
                    assert!(coords[0] >= 0.0 && coords[0] <= 640.0);
                    assert!(coords[1] >= 0.0 && coords[1] <= 400.0);
                }
            }
        }
    }
}
