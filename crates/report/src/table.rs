//! Aligned plain-text table rendering.

use metasim_units::Percent;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple text table builder.
#[derive(Debug, Clone)]
pub struct Table {
    title: Option<String>,
    header: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers; all columns right-aligned except
    /// the first.
    #[must_use]
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        let header: Vec<String> = header.into_iter().map(Into::into).collect();
        let mut aligns = vec![Align::Right; header.len()];
        if let Some(first) = aligns.first_mut() {
            *first = Align::Left;
        }
        Self {
            title: None,
            header,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Set a title printed above the table.
    #[must_use]
    pub fn with_title<S: Into<String>>(mut self, title: S) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Override column alignments (must match header length).
    #[must_use]
    pub fn with_aligns(mut self, aligns: Vec<Align>) -> Self {
        assert_eq!(aligns.len(), self.header.len(), "alignment arity");
        self.aligns = aligns;
        self
    }

    /// Append a row; panics if the arity differs from the header.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity");
        self.rows.push(row);
    }

    /// Number of data rows so far.
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Render as a GitHub-flavoured Markdown table (title as a bold line).
    #[must_use]
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        if let Some(t) = &self.title {
            out.push_str(&format!("**{t}**\n\n"));
        }
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        let seps: Vec<&str> = self
            .aligns
            .iter()
            .map(|a| match a {
                Align::Left => ":--",
                Align::Right => "--:",
            })
            .collect();
        out.push_str(&format!("| {} |\n", seps.join(" | ")));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Render to a string with a separator under the header.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }

        let mut out = String::new();
        if let Some(t) = &self.title {
            out.push_str(t);
            out.push('\n');
        }
        let fmt_row = |cells: &[String], out: &mut String| {
            for i in 0..cols {
                if i > 0 {
                    out.push_str("  ");
                }
                let cell = &cells[i];
                let pad = widths[i] - cell.len();
                match self.aligns[i] {
                    Align::Left => {
                        out.push_str(cell);
                        if i + 1 < cols {
                            out.push_str(&" ".repeat(pad));
                        }
                    }
                    Align::Right => {
                        out.push_str(&" ".repeat(pad));
                        out.push_str(cell);
                    }
                }
            }
            out.push('\n');
        };
        fmt_row(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &mut out);
        }
        out
    }
}

/// Format a value with one decimal (the paper's §4 composite precision).
///
/// Accepts anything convertible to `f64` — bare floats, [`Percent`],
/// `Seconds`, … — and delegates to [`Percent::one_decimal`], the single
/// definition of this precision, so tables, CSVs, and charts cannot
/// drift apart.
#[must_use]
pub fn f1(x: impl Into<f64>) -> String {
    Percent::new(x.into()).one_decimal()
}

/// Format a value as a whole number (the paper's error-table precision);
/// delegates to [`Percent::paper`].
#[must_use]
pub fn f0(x: impl Into<f64>) -> String {
    Percent::new(x.into()).paper()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.push_row(vec!["alpha".to_string(), "1.0".to_string()]);
        t.push_row(vec!["b".to_string(), "123.4".to_string()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Numbers right-aligned: both rows end at the same column.
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[2].ends_with("1.0"));
        assert!(lines[3].ends_with("123.4"));
    }

    #[test]
    fn title_is_printed_first() {
        let mut t = Table::new(vec!["a"]).with_title("Table 4");
        t.push_row(vec!["x"]);
        assert!(t.render().starts_with("Table 4\n"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["only one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f1(1.26), "1.3");
        assert_eq!(f0(63.4), "63");
        assert_eq!(f0(62.5), "62"); // round-half-even
    }

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new(vec!["metric", "err"]).with_title("Table 4");
        t.push_row(vec!["HPL", "63"]);
        let md = t.render_markdown();
        assert!(md.starts_with("**Table 4**\n\n"));
        assert!(md.contains("| metric | err |"));
        assert!(md.contains("| :-- | --: |"));
        assert!(md.contains("| HPL | 63 |"));
    }

    #[test]
    fn row_count_tracks() {
        let mut t = Table::new(vec!["a"]);
        assert_eq!(t.row_count(), 0);
        t.push_row(vec!["1"]);
        assert_eq!(t.row_count(), 1);
    }
}
