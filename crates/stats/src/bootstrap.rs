//! Bootstrap confidence intervals.
//!
//! The paper reports bare means and standard deviations; the report layer
//! here additionally offers percentile-bootstrap confidence intervals for
//! the Table 4 means, so a reader can see how much of the metric ordering
//! is resolution and how much is noise. Deterministic given the seed.

use crate::descriptive::quantile_sorted;
use crate::rng::SeededRng;
use crate::StatsError;

/// A two-sided confidence interval for a mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Confidence level, e.g. 0.95.
    pub confidence: f64,
}

impl ConfidenceInterval {
    /// Whether the interval contains `x`.
    #[must_use]
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo && x <= self.hi
    }

    /// Interval width.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Percentile-bootstrap confidence interval for the mean of `xs`.
///
/// `resamples` of 1,000–10,000 are customary; determinism comes from the
/// caller-supplied RNG.
pub fn bootstrap_mean_ci(
    xs: &[f64],
    resamples: usize,
    confidence: f64,
    rng: &mut SeededRng,
) -> Result<ConfidenceInterval, StatsError> {
    if xs.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if resamples == 0 {
        return Err(StatsError::EmptyInput);
    }
    if !(0.0 < confidence && confidence < 1.0) {
        return Err(StatsError::NonPositive {
            what: "confidence level in (0,1)",
        });
    }
    let n = xs.len();
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut acc = 0.0;
        for _ in 0..n {
            acc += xs[rng.next_below(n as u64) as usize];
        }
        means.push(acc / n as f64);
    }
    means.sort_by(|a, b| a.partial_cmp(b).expect("finite means"));
    let alpha = (1.0 - confidence) / 2.0;
    Ok(ConfidenceInterval {
        lo: quantile_sorted(&means, alpha)?,
        hi: quantile_sorted(&means, 1.0 - alpha)?,
        confidence,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive::mean;

    fn sample(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SeededRng::new(seed);
        (0..n).map(|_| rng.normal_with(50.0, 10.0)).collect()
    }

    #[test]
    fn interval_brackets_the_sample_mean() {
        let xs = sample(200, 1);
        let mut rng = SeededRng::new(2);
        let ci = bootstrap_mean_ci(&xs, 2000, 0.95, &mut rng).unwrap();
        let m = mean(&xs).unwrap();
        assert!(ci.contains(m), "CI [{}, {}] vs mean {m}", ci.lo, ci.hi);
        assert!(ci.width() > 0.0);
    }

    #[test]
    fn wider_confidence_means_wider_interval() {
        let xs = sample(100, 3);
        let ci90 = bootstrap_mean_ci(&xs, 2000, 0.90, &mut SeededRng::new(4)).unwrap();
        let ci99 = bootstrap_mean_ci(&xs, 2000, 0.99, &mut SeededRng::new(4)).unwrap();
        assert!(ci99.width() > ci90.width());
    }

    #[test]
    fn more_data_narrows_the_interval() {
        let small = sample(30, 5);
        let large = sample(3000, 5);
        let ci_small = bootstrap_mean_ci(&small, 1000, 0.95, &mut SeededRng::new(6)).unwrap();
        let ci_large = bootstrap_mean_ci(&large, 1000, 0.95, &mut SeededRng::new(6)).unwrap();
        assert!(ci_large.width() < ci_small.width());
    }

    #[test]
    fn deterministic_given_seed() {
        let xs = sample(50, 7);
        let a = bootstrap_mean_ci(&xs, 500, 0.95, &mut SeededRng::new(8)).unwrap();
        let b = bootstrap_mean_ci(&xs, 500, 0.95, &mut SeededRng::new(8)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_inputs_error() {
        let mut rng = SeededRng::new(9);
        assert!(bootstrap_mean_ci(&[], 100, 0.95, &mut rng).is_err());
        assert!(bootstrap_mean_ci(&[1.0], 0, 0.95, &mut rng).is_err());
        assert!(bootstrap_mean_ci(&[1.0], 100, 1.5, &mut rng).is_err());
        assert!(bootstrap_mean_ci(&[1.0], 100, 0.0, &mut rng).is_err());
    }

    #[test]
    fn constant_data_gives_point_interval() {
        let xs = vec![42.0; 20];
        let ci = bootstrap_mean_ci(&xs, 200, 0.95, &mut SeededRng::new(10)).unwrap();
        assert_eq!(ci.lo, 42.0);
        assert_eq!(ci.hi, 42.0);
    }
}
