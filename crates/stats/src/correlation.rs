//! Correlation measures: Pearson, Spearman, Kendall τ.
//!
//! The paper's introduction frames performance prediction as a proxy for
//! *ranking* HPC systems; Gustafson & Todi's observation that HPL can be
//! "anticorrelated" with application performance is a correlation claim.
//! These routines back the workspace's rank-correlation extension analysis
//! (Kendall τ of predicted vs. true machine rankings).

use crate::StatsError;

/// Pearson product-moment correlation of paired samples.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Result<f64, StatsError> {
    if xs.len() != ys.len() {
        return Err(StatsError::LengthMismatch {
            left: xs.len(),
            right: ys.len(),
        });
    }
    if xs.len() < 2 {
        return Err(StatsError::EmptyInput);
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx).powi(2);
        syy += (y - my).powi(2);
    }
    if sxx == 0.0 || syy == 0.0 {
        return Err(StatsError::NonPositive {
            what: "variance for correlation",
        });
    }
    Ok(sxy / (sxx * syy).sqrt())
}

/// Mid-ranks of a sample (ties share the average rank), 1-based.
#[must_use]
pub fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("NaN in ranks input"));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Average rank for the tie group [i, j].
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation (Pearson on mid-ranks; tie-safe).
pub fn spearman(xs: &[f64], ys: &[f64]) -> Result<f64, StatsError> {
    if xs.len() != ys.len() {
        return Err(StatsError::LengthMismatch {
            left: xs.len(),
            right: ys.len(),
        });
    }
    pearson(&ranks(xs), &ranks(ys))
}

/// Kendall τ-b rank correlation (tie-corrected), O(n²) — fine for the ≤ 150
/// observation sets this workspace correlates.
pub fn kendall_tau(xs: &[f64], ys: &[f64]) -> Result<f64, StatsError> {
    if xs.len() != ys.len() {
        return Err(StatsError::LengthMismatch {
            left: xs.len(),
            right: ys.len(),
        });
    }
    let n = xs.len();
    if n < 2 {
        return Err(StatsError::EmptyInput);
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    let mut ties_x = 0i64;
    let mut ties_y = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = xs[i] - xs[j];
            let dy = ys[i] - ys[j];
            if dx == 0.0 && dy == 0.0 {
                // tied in both: contributes to neither
            } else if dx == 0.0 {
                ties_x += 1;
            } else if dy == 0.0 {
                ties_y += 1;
            } else if dx * dy > 0.0 {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    let n0 = (n * (n - 1) / 2) as f64;
    let denom = ((n0 - ties_x as f64) * (n0 - ties_y as f64)).sqrt();
    if denom == 0.0 {
        return Err(StatsError::NonPositive {
            what: "Kendall denominator",
        });
    }
    Ok((concordant - discordant) as f64 / denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_lines() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let up: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        let down: Vec<f64> = xs.iter().map(|x| -3.0 * x + 9.0).collect();
        assert!((pearson(&xs, &up).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &down).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_zero_variance_errors() {
        assert!(matches!(
            pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]),
            Err(StatsError::NonPositive { .. })
        ));
    }

    #[test]
    fn pearson_shape_errors() {
        assert!(matches!(
            pearson(&[1.0], &[1.0, 2.0]),
            Err(StatsError::LengthMismatch { .. })
        ));
        assert!(matches!(
            pearson(&[1.0], &[1.0]),
            Err(StatsError::EmptyInput)
        ));
    }

    #[test]
    fn ranks_handle_ties_with_midranks() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
        let r = ranks(&[5.0, 5.0, 5.0]);
        assert_eq!(r, vec![2.0, 2.0, 2.0]);
        assert!(ranks(&[]).is_empty());
    }

    #[test]
    fn spearman_monotone_nonlinear_is_one() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|&x: &f64| x.exp()).collect();
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_known_value() {
        // Classic example: one discordant pair among 6 => τ = (5-1)/6 = 2/3.
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [1.0, 2.0, 4.0, 3.0];
        assert!((kendall_tau(&xs, &ys).unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_reversed_is_minus_one() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [5.0, 4.0, 3.0, 2.0, 1.0];
        assert!((kendall_tau(&xs, &ys).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_tie_correction() {
        // x has one tied pair; τ-b should still be well-defined and < 1.
        let xs = [1.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 2.0, 3.0, 4.0];
        let tau = kendall_tau(&xs, &ys).unwrap();
        assert!(tau > 0.8 && tau < 1.0, "tau {tau}");
    }

    #[test]
    fn kendall_all_tied_errors() {
        assert!(matches!(
            kendall_tau(&[1.0, 1.0], &[2.0, 3.0]),
            Err(StatsError::NonPositive { .. })
        ));
    }
}
