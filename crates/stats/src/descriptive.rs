//! Descriptive statistics: means, standard deviations, quantiles, summaries.
//!
//! Table 4 and Table 5 of the paper report the *average* and *standard
//! deviation* of absolute percent errors; this module provides those
//! aggregations plus the usual descriptive extras used by the report crate.

use serde::{Deserialize, Serialize};

use crate::StatsError;

/// Arithmetic mean. Returns `Err(EmptyInput)` on an empty slice.
pub fn mean(xs: &[f64]) -> Result<f64, StatsError> {
    if xs.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Population standard deviation (divide by *n*).
///
/// The paper aggregates over the full set of predictions it made — a
/// population, not a sample — so population SD matches its Tables 4/5
/// convention. See [`sample_stddev`] for the *n−1* variant.
pub fn stddev(xs: &[f64]) -> Result<f64, StatsError> {
    let m = mean(xs)?;
    let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64;
    Ok(var.sqrt())
}

/// Sample standard deviation (divide by *n−1*); needs at least 2 points.
pub fn sample_stddev(xs: &[f64]) -> Result<f64, StatsError> {
    if xs.len() < 2 {
        return Err(StatsError::EmptyInput);
    }
    let m = mean(xs)?;
    let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    Ok(var.sqrt())
}

/// Linear-interpolated quantile of already-sorted data, `q` in `[0, 1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> Result<f64, StatsError> {
    if sorted.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "quantile_sorted requires sorted input"
    );
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Ok(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Median (sorts a copy; for repeated quantile queries sort once and use
/// [`quantile_sorted`]).
pub fn median(xs: &[f64]) -> Result<f64, StatsError> {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in median input"));
    quantile_sorted(&v, 0.5)
}

/// A one-pass descriptive summary of a data set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Summarize a non-empty slice. Panics on empty input (use
    /// [`Summary::try_from_slice`] when emptiness is a real possibility).
    #[must_use]
    pub fn from_slice(xs: &[f64]) -> Self {
        Self::try_from_slice(xs).expect("Summary::from_slice on empty input")
    }

    /// Summarize a slice, reporting emptiness as an error.
    pub fn try_from_slice(xs: &[f64]) -> Result<Self, StatsError> {
        let m = mean(xs)?;
        let sd = stddev(xs)?;
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in xs {
            lo = lo.min(x);
            hi = hi.max(x);
        }
        Ok(Self {
            n: xs.len(),
            mean: m,
            stddev: sd,
            min: lo,
            max: hi,
        })
    }
}

/// Running (Welford) accumulator for mean/variance without storing samples.
///
/// Used by the study driver to aggregate thousands of per-prediction errors
/// without building intermediate vectors in the hot path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Fresh, empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator (parallel reduction support).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n as f64;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations folded in.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Current mean (0 for an empty accumulator).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation (0 for fewer than 2 observations).
    #[must_use]
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / self.n as f64).sqrt()
        }
    }

    /// Finish into a [`Summary`]; `None` if no observations were pushed.
    #[must_use]
    pub fn summary(&self) -> Option<Summary> {
        if self.n == 0 {
            return None;
        }
        Some(Summary {
            n: self.n as usize,
            mean: self.mean,
            stddev: self.stddev(),
            min: self.min,
            max: self.max,
        })
    }
}

/// Geometric mean of strictly positive data.
pub fn geometric_mean(xs: &[f64]) -> Result<f64, StatsError> {
    if xs.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    let mut acc = 0.0;
    for &x in xs {
        if x <= 0.0 {
            return Err(StatsError::NonPositive {
                what: "geometric mean input",
            });
        }
        acc += x.ln();
    }
    Ok((acc / xs.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn mean_and_stddev_basic() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs).unwrap() - 5.0).abs() < EPS);
        // Classic example with population SD exactly 2.
        assert!((stddev(&xs).unwrap() - 2.0).abs() < EPS);
    }

    #[test]
    fn empty_inputs_error() {
        assert_eq!(mean(&[]), Err(StatsError::EmptyInput));
        assert_eq!(stddev(&[]), Err(StatsError::EmptyInput));
        assert_eq!(sample_stddev(&[1.0]), Err(StatsError::EmptyInput));
        assert_eq!(median(&[]), Err(StatsError::EmptyInput));
        assert_eq!(geometric_mean(&[]), Err(StatsError::EmptyInput));
    }

    #[test]
    fn sample_stddev_uses_n_minus_one() {
        let xs = [1.0, 2.0, 3.0];
        assert!((sample_stddev(&xs).unwrap() - 1.0).abs() < EPS);
        assert!((stddev(&xs).unwrap() - (2.0f64 / 3.0).sqrt()).abs() < EPS);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((quantile_sorted(&xs, 0.0).unwrap() - 1.0).abs() < EPS);
        assert!((quantile_sorted(&xs, 1.0).unwrap() - 4.0).abs() < EPS);
        assert!((quantile_sorted(&xs, 0.5).unwrap() - 2.5).abs() < EPS);
        assert!((quantile_sorted(&xs, 1.0 / 3.0).unwrap() - 2.0).abs() < EPS);
    }

    #[test]
    fn median_odd_and_even() {
        assert!((median(&[3.0, 1.0, 2.0]).unwrap() - 2.0).abs() < EPS);
        assert!((median(&[4.0, 1.0, 3.0, 2.0]).unwrap() - 2.5).abs() < EPS);
    }

    #[test]
    fn summary_fields() {
        let s = Summary::from_slice(&[1.0, 5.0, 3.0]);
        assert_eq!(s.n, 3);
        assert!((s.mean - 3.0).abs() < EPS);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    #[should_panic(expected = "empty input")]
    fn summary_from_empty_panics() {
        let _ = Summary::from_slice(&[]);
    }

    #[test]
    fn welford_matches_batch() {
        let xs = [2.5, -1.0, 7.0, 4.4, 0.1, 3.3];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let s = w.summary().unwrap();
        assert!((s.mean - mean(&xs).unwrap()).abs() < 1e-10);
        assert!((s.stddev - stddev(&xs).unwrap()).abs() < 1e-10);
        assert_eq!(s.min, -1.0);
        assert_eq!(s.max, 7.0);
    }

    #[test]
    fn welford_merge_matches_single_pass() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Welford::new();
        xs.iter().for_each(|&x| whole.push(x));

        let (a, b) = xs.split_at(37);
        let mut wa = Welford::new();
        a.iter().for_each(|&x| wa.push(x));
        let mut wb = Welford::new();
        b.iter().for_each(|&x| wb.push(x));
        wa.merge(&wb);

        assert_eq!(wa.count(), whole.count());
        assert!((wa.mean() - whole.mean()).abs() < 1e-10);
        assert!((wa.stddev() - whole.stddev()).abs() < 1e-10);
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a = Welford::new();
        a.push(1.0);
        a.push(2.0);
        let before = a;
        a.merge(&Welford::new());
        assert_eq!(a, before);

        let mut empty = Welford::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn welford_empty_summary_is_none() {
        assert!(Welford::new().summary().is_none());
        assert_eq!(Welford::new().stddev(), 0.0);
    }

    #[test]
    fn geometric_mean_basic() {
        assert!((geometric_mean(&[1.0, 4.0]).unwrap() - 2.0).abs() < EPS);
        assert!(matches!(
            geometric_mean(&[1.0, 0.0]),
            Err(StatsError::NonPositive { .. })
        ));
    }
}
