//! Prediction-error metrics: Equation 2 of the paper and its aggregations.
//!
//! > % Error = (T′(X,Y) − T(X,Y)) / T(X,Y) · 100
//!
//! Negative error means the prediction was *faster* than the actual runtime;
//! positive means *slower*. The paper then takes absolute values before
//! averaging "to ensure the magnitude of each deviation is considered …
//! preventing error cancellation". [`ErrorAccumulator`] implements exactly
//! that aggregation discipline and is what Tables 4 and 5 are built from.
//!
//! Equation 2 is dimension-checked at compile time: the prediction and the
//! measurement must share a dimension (normally both [`Seconds`]), their
//! difference-over-actual is a dimensionless ratio, and the result is a
//! [`Percent`] — so an error can never be accidentally fed back in as a
//! runtime.
//!
//! [`Seconds`]: metasim_units::Seconds

use serde::{Deserialize, Serialize};

use metasim_units::{Dimension, Percent, Quantity};

use crate::descriptive::Welford;
use crate::StatsError;

/// Signed percent error of a prediction against a measurement (Equation 2).
///
/// Panics in debug builds if `actual` is not strictly positive; use
/// [`try_percent_error`] for fallible call sites.
#[must_use]
pub fn percent_error<D: Dimension>(predicted: Quantity<D>, actual: Quantity<D>) -> Percent {
    debug_assert!(actual > 0.0, "percent_error: actual must be positive");
    ((predicted - actual) / actual).percent()
}

/// Fallible variant of [`percent_error`].
pub fn try_percent_error<D: Dimension>(
    predicted: Quantity<D>,
    actual: Quantity<D>,
) -> Result<Percent, StatsError> {
    if actual <= 0.0 {
        return Err(StatsError::NonPositive {
            what: "actual runtime",
        });
    }
    Ok(((predicted - actual) / actual).percent())
}

/// Absolute percent error (|Equation 2|).
#[must_use]
pub fn absolute_percent_error<D: Dimension>(
    predicted: Quantity<D>,
    actual: Quantity<D>,
) -> Percent {
    percent_error(predicted, actual).abs()
}

/// Aggregates prediction errors the way the paper does: signed errors are
/// recorded per experiment, then the *absolute* values are averaged (with
/// their standard deviation) across experiments.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ErrorAccumulator {
    signed: Welford,
    absolute: Welford,
}

impl ErrorAccumulator {
    /// Fresh, empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one (prediction, measurement) pair.
    pub fn record<D: Dimension>(&mut self, predicted: Quantity<D>, actual: Quantity<D>) {
        let e = percent_error(predicted, actual);
        self.record_signed_error(e);
    }

    /// Record a pre-computed signed percent error.
    pub fn record_signed_error(&mut self, signed: Percent) {
        self.signed.push(signed.get());
        self.absolute.push(signed.get().abs());
    }

    /// Merge another accumulator (parallel reduction support).
    pub fn merge(&mut self, other: &ErrorAccumulator) {
        self.signed.merge(&other.signed);
        self.absolute.merge(&other.absolute);
    }

    /// Number of recorded experiments.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.absolute.count()
    }

    /// Average absolute percent error — the paper's headline statistic.
    #[must_use]
    pub fn mean_absolute(&self) -> Percent {
        Percent::new(self.absolute.mean())
    }

    /// Population standard deviation of absolute percent errors — the
    /// paper's second column in Table 4.
    #[must_use]
    pub fn stddev_absolute(&self) -> Percent {
        Percent::new(self.absolute.stddev())
    }

    /// Mean of the *signed* errors (reveals bias direction).
    #[must_use]
    pub fn mean_signed(&self) -> Percent {
        Percent::new(self.signed.mean())
    }

    /// Largest absolute error recorded; 0 if empty.
    #[must_use]
    pub fn max_absolute(&self) -> Percent {
        Percent::new(self.absolute.summary().map_or(0.0, |s| s.max))
    }
}

/// Mean absolute percent error of paired predictions/measurements.
pub fn mean_absolute_percent_error<D: Dimension>(
    predicted: &[Quantity<D>],
    actual: &[Quantity<D>],
) -> Result<Percent, StatsError> {
    if predicted.len() != actual.len() {
        return Err(StatsError::LengthMismatch {
            left: predicted.len(),
            right: actual.len(),
        });
    }
    if predicted.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    let mut acc = ErrorAccumulator::new();
    for (&p, &a) in predicted.iter().zip(actual) {
        acc.record_signed_error(try_percent_error(p, a)?);
    }
    Ok(acc.mean_absolute())
}

#[cfg(test)]
mod tests {
    use super::*;
    use metasim_units::Seconds;

    fn s(v: f64) -> Seconds {
        Seconds::new(v)
    }

    #[test]
    fn equation_two_signs() {
        // Prediction faster than actual => negative.
        assert!((percent_error(s(50.0), s(100.0)).get() + 50.0).abs() < 1e-12);
        // Prediction slower than actual => positive.
        assert!((percent_error(s(150.0), s(100.0)).get() - 50.0).abs() < 1e-12);
        // Perfect prediction => zero.
        assert_eq!(percent_error(s(100.0), s(100.0)), 0.0);
    }

    #[test]
    fn try_variant_rejects_nonpositive_actual() {
        assert!(matches!(
            try_percent_error(s(1.0), s(0.0)),
            Err(StatsError::NonPositive { .. })
        ));
        assert!(matches!(
            try_percent_error(s(1.0), s(-5.0)),
            Err(StatsError::NonPositive { .. })
        ));
        assert!((try_percent_error(s(2.0), s(4.0)).unwrap().get() + 50.0).abs() < 1e-12);
    }

    #[test]
    fn absolute_error_drops_sign() {
        assert!((absolute_percent_error(s(50.0), s(100.0)).get() - 50.0).abs() < 1e-12);
        assert!((absolute_percent_error(s(150.0), s(100.0)).get() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn accumulator_prevents_cancellation() {
        // +50% and -50% would cancel to zero under naive signed averaging;
        // the paper's discipline keeps them at 50.
        let mut acc = ErrorAccumulator::new();
        acc.record(s(150.0), s(100.0));
        acc.record(s(50.0), s(100.0));
        assert_eq!(acc.count(), 2);
        assert!((acc.mean_absolute().get() - 50.0).abs() < 1e-12);
        assert!(acc.mean_signed().abs() < 1e-12);
        assert!((acc.stddev_absolute().get() - 0.0).abs() < 1e-12);
        assert!((acc.max_absolute().get() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn accumulator_stddev_of_absolute_values() {
        let mut acc = ErrorAccumulator::new();
        // absolute errors: 10 and 30 => mean 20, population SD 10.
        acc.record(s(110.0), s(100.0));
        acc.record(s(70.0), s(100.0));
        assert!((acc.mean_absolute().get() - 20.0).abs() < 1e-12);
        assert!((acc.stddev_absolute().get() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn accumulator_merge_matches_sequential() {
        let pairs = [(110.0, 100.0), (70.0, 100.0), (95.0, 100.0), (210.0, 100.0)];
        let mut whole = ErrorAccumulator::new();
        pairs.iter().for_each(|&(p, a)| whole.record(s(p), s(a)));

        let mut left = ErrorAccumulator::new();
        let mut right = ErrorAccumulator::new();
        pairs[..2]
            .iter()
            .for_each(|&(p, a)| left.record(s(p), s(a)));
        pairs[2..]
            .iter()
            .for_each(|&(p, a)| right.record(s(p), s(a)));
        left.merge(&right);

        assert_eq!(left.count(), whole.count());
        assert!((left.mean_absolute() - whole.mean_absolute()).abs() < 1e-10);
        assert!((left.stddev_absolute() - whole.stddev_absolute()).abs() < 1e-10);
        assert!((left.mean_signed() - whole.mean_signed()).abs() < 1e-10);
    }

    #[test]
    fn mape_helper() {
        let p = [s(90.0), s(120.0)];
        let a = [s(100.0), s(100.0)];
        assert!((mean_absolute_percent_error(&p, &a).unwrap().get() - 15.0).abs() < 1e-12);
        assert!(matches!(
            mean_absolute_percent_error(&[s(1.0)], &[s(1.0), s(2.0)]),
            Err(StatsError::LengthMismatch { .. })
        ));
        assert!(matches!(
            mean_absolute_percent_error::<metasim_units::SecondsDim>(&[], &[]),
            Err(StatsError::EmptyInput)
        ));
    }

    #[test]
    fn empty_accumulator_reports_zeroes() {
        let acc = ErrorAccumulator::new();
        assert_eq!(acc.count(), 0);
        assert_eq!(acc.mean_absolute(), 0.0);
        assert_eq!(acc.max_absolute(), 0.0);
    }

    /// Table 4 fixture: the published STREAM row is mean |error| 43% with
    /// SD 49% — feed a tiny synthetic set of signed errors shaped like the
    /// paper's (over- and under-predictions mixed) and check the signed
    /// mean stays near zero while the absolute mean does not.
    #[test]
    fn table4_style_signed_vs_absolute_discipline() {
        let actual = s(100.0);
        let mut acc = ErrorAccumulator::new();
        for predicted in [143.0, 57.0, 120.0, 80.0] {
            acc.record(s(predicted), actual);
        }
        // Signed errors: +43, -43, +20, -20 — cancel to 0.
        assert!(acc.mean_signed().abs() < 1e-12);
        // Absolute errors: 43, 43, 20, 20 — mean 31.5, like a Table 4 cell.
        assert!((acc.mean_absolute().get() - 31.5).abs() < 1e-12);
        // The rendering used in Table 4 is whole percent.
        assert_eq!(acc.mean_absolute().paper(), "32");
    }

    /// The `Percent` type is the unit boundary: Equation 2's output cannot
    /// be fed back in as a runtime (that would not compile), and its signed
    /// rendering matches the CLI's `{:+.1}` convention.
    #[test]
    fn percent_is_a_distinct_endpoint_type() {
        let e = percent_error(s(90.0), s(100.0));
        assert_eq!(e.signed_one_decimal(), "-10.0");
        assert_eq!(e.abs().one_decimal(), "10.0");
    }
}
