//! Prediction-error metrics: Equation 2 of the paper and its aggregations.
//!
//! > % Error = (T′(X,Y) − T(X,Y)) / T(X,Y) · 100
//!
//! Negative error means the prediction was *faster* than the actual runtime;
//! positive means *slower*. The paper then takes absolute values before
//! averaging "to ensure the magnitude of each deviation is considered …
//! preventing error cancellation". [`ErrorAccumulator`] implements exactly
//! that aggregation discipline and is what Tables 4 and 5 are built from.

use serde::{Deserialize, Serialize};

use crate::descriptive::Welford;
use crate::StatsError;

/// Signed percent error of a prediction against a measurement (Equation 2).
///
/// Panics in debug builds if `actual` is not strictly positive; use
/// [`try_percent_error`] for fallible call sites.
#[must_use]
pub fn percent_error(predicted: f64, actual: f64) -> f64 {
    debug_assert!(actual > 0.0, "percent_error: actual must be positive");
    (predicted - actual) / actual * 100.0
}

/// Fallible variant of [`percent_error`].
pub fn try_percent_error(predicted: f64, actual: f64) -> Result<f64, StatsError> {
    if actual <= 0.0 {
        return Err(StatsError::NonPositive {
            what: "actual runtime",
        });
    }
    Ok((predicted - actual) / actual * 100.0)
}

/// Absolute percent error (|Equation 2|).
#[must_use]
pub fn absolute_percent_error(predicted: f64, actual: f64) -> f64 {
    percent_error(predicted, actual).abs()
}

/// Aggregates prediction errors the way the paper does: signed errors are
/// recorded per experiment, then the *absolute* values are averaged (with
/// their standard deviation) across experiments.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ErrorAccumulator {
    signed: Welford,
    absolute: Welford,
}

impl ErrorAccumulator {
    /// Fresh, empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one (prediction, measurement) pair.
    pub fn record(&mut self, predicted: f64, actual: f64) {
        let e = percent_error(predicted, actual);
        self.record_signed_error(e);
    }

    /// Record a pre-computed signed percent error.
    pub fn record_signed_error(&mut self, signed_percent: f64) {
        self.signed.push(signed_percent);
        self.absolute.push(signed_percent.abs());
    }

    /// Merge another accumulator (parallel reduction support).
    pub fn merge(&mut self, other: &ErrorAccumulator) {
        self.signed.merge(&other.signed);
        self.absolute.merge(&other.absolute);
    }

    /// Number of recorded experiments.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.absolute.count()
    }

    /// Average absolute percent error — the paper's headline statistic.
    #[must_use]
    pub fn mean_absolute(&self) -> f64 {
        self.absolute.mean()
    }

    /// Population standard deviation of absolute percent errors — the
    /// paper's second column in Table 4.
    #[must_use]
    pub fn stddev_absolute(&self) -> f64 {
        self.absolute.stddev()
    }

    /// Mean of the *signed* errors (reveals bias direction).
    #[must_use]
    pub fn mean_signed(&self) -> f64 {
        self.signed.mean()
    }

    /// Largest absolute error recorded; 0 if empty.
    #[must_use]
    pub fn max_absolute(&self) -> f64 {
        self.absolute.summary().map_or(0.0, |s| s.max)
    }
}

/// Mean absolute percent error of paired predictions/measurements.
pub fn mean_absolute_percent_error(predicted: &[f64], actual: &[f64]) -> Result<f64, StatsError> {
    if predicted.len() != actual.len() {
        return Err(StatsError::LengthMismatch {
            left: predicted.len(),
            right: actual.len(),
        });
    }
    if predicted.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    let mut acc = ErrorAccumulator::new();
    for (&p, &a) in predicted.iter().zip(actual) {
        acc.record_signed_error(try_percent_error(p, a)?);
    }
    Ok(acc.mean_absolute())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equation_two_signs() {
        // Prediction faster than actual => negative.
        assert!((percent_error(50.0, 100.0) + 50.0).abs() < 1e-12);
        // Prediction slower than actual => positive.
        assert!((percent_error(150.0, 100.0) - 50.0).abs() < 1e-12);
        // Perfect prediction => zero.
        assert_eq!(percent_error(100.0, 100.0), 0.0);
    }

    #[test]
    fn try_variant_rejects_nonpositive_actual() {
        assert!(matches!(
            try_percent_error(1.0, 0.0),
            Err(StatsError::NonPositive { .. })
        ));
        assert!(matches!(
            try_percent_error(1.0, -5.0),
            Err(StatsError::NonPositive { .. })
        ));
        assert!((try_percent_error(2.0, 4.0).unwrap() + 50.0).abs() < 1e-12);
    }

    #[test]
    fn absolute_error_drops_sign() {
        assert!((absolute_percent_error(50.0, 100.0) - 50.0).abs() < 1e-12);
        assert!((absolute_percent_error(150.0, 100.0) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn accumulator_prevents_cancellation() {
        // +50% and -50% would cancel to zero under naive signed averaging;
        // the paper's discipline keeps them at 50.
        let mut acc = ErrorAccumulator::new();
        acc.record(150.0, 100.0);
        acc.record(50.0, 100.0);
        assert_eq!(acc.count(), 2);
        assert!((acc.mean_absolute() - 50.0).abs() < 1e-12);
        assert!(acc.mean_signed().abs() < 1e-12);
        assert!((acc.stddev_absolute() - 0.0).abs() < 1e-12);
        assert!((acc.max_absolute() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn accumulator_stddev_of_absolute_values() {
        let mut acc = ErrorAccumulator::new();
        // absolute errors: 10 and 30 => mean 20, population SD 10.
        acc.record(110.0, 100.0);
        acc.record(70.0, 100.0);
        assert!((acc.mean_absolute() - 20.0).abs() < 1e-12);
        assert!((acc.stddev_absolute() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn accumulator_merge_matches_sequential() {
        let pairs = [(110.0, 100.0), (70.0, 100.0), (95.0, 100.0), (210.0, 100.0)];
        let mut whole = ErrorAccumulator::new();
        pairs.iter().for_each(|&(p, a)| whole.record(p, a));

        let mut left = ErrorAccumulator::new();
        let mut right = ErrorAccumulator::new();
        pairs[..2].iter().for_each(|&(p, a)| left.record(p, a));
        pairs[2..].iter().for_each(|&(p, a)| right.record(p, a));
        left.merge(&right);

        assert_eq!(left.count(), whole.count());
        assert!((left.mean_absolute() - whole.mean_absolute()).abs() < 1e-10);
        assert!((left.stddev_absolute() - whole.stddev_absolute()).abs() < 1e-10);
        assert!((left.mean_signed() - whole.mean_signed()).abs() < 1e-10);
    }

    #[test]
    fn mape_helper() {
        let p = [90.0, 120.0];
        let a = [100.0, 100.0];
        assert!((mean_absolute_percent_error(&p, &a).unwrap() - 15.0).abs() < 1e-12);
        assert!(matches!(
            mean_absolute_percent_error(&[1.0], &[1.0, 2.0]),
            Err(StatsError::LengthMismatch { .. })
        ));
        assert!(matches!(
            mean_absolute_percent_error(&[], &[]),
            Err(StatsError::EmptyInput)
        ));
    }

    #[test]
    fn empty_accumulator_reports_zeroes() {
        let acc = ErrorAccumulator::new();
        assert_eq!(acc.count(), 0);
        assert_eq!(acc.mean_absolute(), 0.0);
        assert_eq!(acc.max_absolute(), 0.0);
    }
}
