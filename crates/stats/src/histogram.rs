//! Fixed-bin histograms, used by the report crate's ASCII charts and by
//! diagnostics on error distributions.

use serde::{Deserialize, Serialize};

use crate::StatsError;

/// A histogram over `[lo, hi)` with equal-width bins plus overflow/underflow
/// counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Create a histogram with `bins` equal-width bins covering `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self, StatsError> {
        if bins == 0 {
            return Err(StatsError::EmptyInput);
        }
        if hi.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater) {
            return Err(StatsError::NonPositive {
                what: "histogram range",
            });
        }
        Ok(Self {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        })
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            // Guard against FP edge where x==hi-ulp maps to len().
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Per-bin counts (excluding under/overflow).
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count below range.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count at or above range.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded, including out-of-range.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// `(low_edge, high_edge)` of bin `i`.
    #[must_use]
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + width * i as f64, self.lo + width * (i + 1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        h.record(0.0);
        h.record(1.9);
        h.record(2.0);
        h.record(9.99);
        h.record(-0.1);
        h.record(10.0);
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn edges_are_uniform() {
        let h = Histogram::new(0.0, 10.0, 4).unwrap();
        assert_eq!(h.bin_edges(0), (0.0, 2.5));
        assert_eq!(h.bin_edges(3), (7.5, 10.0));
    }

    #[test]
    fn invalid_construction() {
        assert!(Histogram::new(0.0, 10.0, 0).is_err());
        assert!(Histogram::new(5.0, 5.0, 3).is_err());
        assert!(Histogram::new(6.0, 5.0, 3).is_err());
    }

    #[test]
    fn near_upper_edge_does_not_panic() {
        let mut h = Histogram::new(0.0, 1.0, 3).unwrap();
        h.record(1.0 - f64::EPSILON);
        assert_eq!(h.counts().iter().sum::<u64>(), 1);
    }
}
