//! Statistics and deterministic-randomness substrate for the `metasim` workspace.
//!
//! The SC'05 study this workspace reproduces leans on a handful of statistical
//! operations — percent-error (its Equation 2), averages and standard
//! deviations of absolute errors (Tables 4 and 5), least-squares regression
//! (the optimized "balanced rating" weights of §4), and rank correlation (the
//! system-ranking framing of the introduction). The Rust ecosystem's
//! statistics crates are thin and none are on the approved offline list, so
//! this crate implements exactly what the study needs, from scratch, with
//! careful tests.
//!
//! It also hosts the workspace's *determinism* substrate:
//! [`rng::SeededRng`], a SplitMix64 generator seeded from stable string
//! hashes, so that every synthetic address stream, idiosyncrasy factor, and
//! imbalance draw in the workspace is exactly reproducible run-to-run.
//!
//! # Quick example
//!
//! ```
//! use metasim_stats::descriptive::Summary;
//! use metasim_stats::error_metrics::percent_error;
//! use metasim_units::Seconds;
//!
//! // Equation 2 of the paper: (T' - T) / T * 100. The inputs are typed
//! // runtimes; the output is a `Percent`, not another runtime.
//! let err = percent_error(Seconds::new(90.0), Seconds::new(100.0));
//! assert!((err.get() - -10.0).abs() < 1e-12);
//!
//! let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]);
//! assert_eq!(s.mean, 2.5);
//! ```

pub mod bootstrap;
pub mod correlation;
pub mod descriptive;
pub mod error_metrics;
pub mod histogram;
pub mod regression;
pub mod rng;

pub use correlation::{kendall_tau, pearson, spearman};
pub use descriptive::Summary;
pub use error_metrics::{absolute_percent_error, percent_error, ErrorAccumulator};
pub use regression::{ols, simplex_constrained_least_squares, OlsFit};
pub use rng::SeededRng;

/// Errors produced by statistical routines in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsError {
    /// The input slice was empty where at least one element is required.
    EmptyInput,
    /// Input slices that must have equal lengths did not.
    LengthMismatch {
        /// Length of the first operand.
        left: usize,
        /// Length of the second operand.
        right: usize,
    },
    /// The linear system passed to the solver is singular (or numerically so).
    SingularMatrix,
    /// A quantity that must be strictly positive was not (e.g. a measured
    /// runtime of zero used as an error denominator).
    NonPositive {
        /// Human-readable name of the offending quantity.
        what: &'static str,
    },
    /// Fewer observations than unknowns in a regression.
    Underdetermined {
        /// Number of observations supplied.
        observations: usize,
        /// Number of unknown coefficients requested.
        unknowns: usize,
    },
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::EmptyInput => write!(f, "empty input where data is required"),
            StatsError::LengthMismatch { left, right } => {
                write!(f, "length mismatch: {left} vs {right}")
            }
            StatsError::SingularMatrix => write!(f, "singular (or near-singular) matrix"),
            StatsError::NonPositive { what } => {
                write!(f, "{what} must be strictly positive")
            }
            StatsError::Underdetermined {
                observations,
                unknowns,
            } => write!(
                f,
                "underdetermined system: {observations} observations for {unknowns} unknowns"
            ),
        }
    }
}

impl std::error::Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = StatsError::LengthMismatch { left: 3, right: 4 };
        assert_eq!(e.to_string(), "length mismatch: 3 vs 4");
        let e = StatsError::NonPositive { what: "runtime" };
        assert!(e.to_string().contains("runtime"));
        assert_eq!(
            StatsError::EmptyInput.to_string(),
            "empty input where data is required"
        );
        let e = StatsError::Underdetermined {
            observations: 2,
            unknowns: 5,
        };
        assert!(e.to_string().contains("2 observations for 5 unknowns"));
        assert!(StatsError::SingularMatrix.to_string().contains("singular"));
    }
}
