//! Least-squares regression.
//!
//! Section 4 of the paper fits "category weightings which minimize estimation
//! error" over three simple-benchmark categories (HPL, STREAM, all_reduce),
//! finding 5% / 50% / 45%. That fit needs (a) ordinary least squares and (b)
//! a *constrained* variant where weights are non-negative and sum to one —
//! i.e. least squares over the probability simplex. Both are implemented here
//! from first principles: OLS via normal equations with partially-pivoted
//! Gaussian elimination, and the simplex fit via projected gradient descent
//! with an exact Euclidean simplex projection.

use serde::{Deserialize, Serialize};

use crate::StatsError;

/// Result of an ordinary-least-squares fit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OlsFit {
    /// Fitted coefficients, one per predictor column (plus the intercept
    /// last, if requested).
    pub coefficients: Vec<f64>,
    /// Residual sum of squares.
    pub rss: f64,
    /// Coefficient of determination R².
    pub r_squared: f64,
}

/// Solve the square linear system `a · x = b` in place using Gaussian
/// elimination with partial pivoting. `a` is row-major, `n × n`.
pub fn solve_linear_system(a: &mut [f64], b: &mut [f64], n: usize) -> Result<Vec<f64>, StatsError> {
    assert_eq!(a.len(), n * n, "matrix size mismatch");
    assert_eq!(b.len(), n, "rhs size mismatch");
    for col in 0..n {
        // Partial pivot: pick the largest |value| at/below the diagonal.
        let mut pivot = col;
        let mut best = a[col * n + col].abs();
        for row in (col + 1)..n {
            let v = a[row * n + col].abs();
            if v > best {
                best = v;
                pivot = row;
            }
        }
        if best < 1e-12 {
            return Err(StatsError::SingularMatrix);
        }
        if pivot != col {
            for k in 0..n {
                a.swap(col * n + k, pivot * n + k);
            }
            b.swap(col, pivot);
        }
        let diag = a[col * n + col];
        for row in (col + 1)..n {
            let factor = a[row * n + col] / diag;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row * n + k] -= factor * a[col * n + k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row * n + k] * x[k];
        }
        x[row] = acc / a[row * n + row];
    }
    Ok(x)
}

/// Ordinary least squares: fit `y ≈ X·β (+ intercept)`.
///
/// `rows` is a slice of predictor rows (each the same length); `y` the
/// responses. When `intercept` is true a constant column is appended and the
/// intercept coefficient is returned *last*.
pub fn ols(rows: &[Vec<f64>], y: &[f64], intercept: bool) -> Result<OlsFit, StatsError> {
    if rows.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if rows.len() != y.len() {
        return Err(StatsError::LengthMismatch {
            left: rows.len(),
            right: y.len(),
        });
    }
    let p = rows[0].len();
    if rows.iter().any(|r| r.len() != p) {
        return Err(StatsError::LengthMismatch {
            left: p,
            right: rows.iter().map(Vec::len).find(|&l| l != p).unwrap_or(p),
        });
    }
    let k = p + usize::from(intercept);
    if rows.len() < k {
        return Err(StatsError::Underdetermined {
            observations: rows.len(),
            unknowns: k,
        });
    }

    // Normal equations: (XᵀX) β = Xᵀy. k is tiny (≤ 10) in this workspace,
    // so the O(n·k²) build dominates and conditioning is manageable.
    let xij = |row: &Vec<f64>, j: usize| -> f64 {
        if j < p {
            row[j]
        } else {
            1.0
        }
    };
    let mut xtx = vec![0.0; k * k];
    let mut xty = vec![0.0; k];
    for (row, &yi) in rows.iter().zip(y) {
        for i in 0..k {
            let xi = xij(row, i);
            xty[i] += xi * yi;
            for j in 0..k {
                xtx[i * k + j] += xi * xij(row, j);
            }
        }
    }
    let beta = solve_linear_system(&mut xtx, &mut xty, k)?;

    // Goodness of fit.
    let y_mean = y.iter().sum::<f64>() / y.len() as f64;
    let mut rss = 0.0;
    let mut tss = 0.0;
    for (row, &yi) in rows.iter().zip(y) {
        let pred: f64 = (0..k).map(|j| beta[j] * xij(row, j)).sum();
        rss += (yi - pred).powi(2);
        tss += (yi - y_mean).powi(2);
    }
    let r_squared = if tss > 0.0 { 1.0 - rss / tss } else { 1.0 };
    Ok(OlsFit {
        coefficients: beta,
        rss,
        r_squared,
    })
}

/// Exact Euclidean projection of `v` onto the probability simplex
/// `{ w : wᵢ ≥ 0, Σ wᵢ = 1 }` (Duchi et al. 2008).
#[must_use]
pub fn project_to_simplex(v: &[f64]) -> Vec<f64> {
    assert!(!v.is_empty(), "cannot project an empty vector");
    let mut u = v.to_vec();
    u.sort_by(|a, b| b.partial_cmp(a).expect("NaN in simplex projection"));
    let mut css = 0.0;
    let mut rho = 0;
    let mut theta = 0.0;
    for (i, &ui) in u.iter().enumerate() {
        css += ui;
        let t = (css - 1.0) / (i + 1) as f64;
        if ui - t > 0.0 {
            rho = i;
            theta = t;
        }
    }
    let _ = rho;
    v.iter().map(|&x| (x - theta).max(0.0)).collect()
}

/// Least squares over the probability simplex: find weights `w` (non-negative,
/// summing to 1) minimizing `Σᵢ (Σⱼ wⱼ·Xᵢⱼ − yᵢ)²`, via projected gradient
/// descent with a fixed step derived from the Lipschitz constant.
///
/// This is the constrained fit the paper's "optimized balanced rating" needs:
/// the categories are rates normalized to `[0, 1]`, the weights are a convex
/// combination.
pub fn simplex_constrained_least_squares(
    rows: &[Vec<f64>],
    y: &[f64],
    iterations: usize,
) -> Result<Vec<f64>, StatsError> {
    if rows.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if rows.len() != y.len() {
        return Err(StatsError::LengthMismatch {
            left: rows.len(),
            right: y.len(),
        });
    }
    let p = rows[0].len();
    if p == 0 {
        return Err(StatsError::EmptyInput);
    }
    if rows.iter().any(|r| r.len() != p) {
        return Err(StatsError::LengthMismatch {
            left: p,
            right: rows.iter().map(Vec::len).find(|&l| l != p).unwrap_or(p),
        });
    }

    // Lipschitz constant of the gradient is 2·λmax(XᵀX) ≤ 2·trace(XᵀX).
    let trace: f64 = rows.iter().flat_map(|r| r.iter().map(|x| x * x)).sum();
    let step = if trace > 0.0 {
        1.0 / (2.0 * trace)
    } else {
        1.0
    };

    let mut w = vec![1.0 / p as f64; p];
    let mut grad = vec![0.0; p];
    for _ in 0..iterations {
        grad.iter_mut().for_each(|g| *g = 0.0);
        for (row, &yi) in rows.iter().zip(y) {
            let pred: f64 = row.iter().zip(&w).map(|(x, wi)| x * wi).sum();
            let resid = pred - yi;
            for (g, &x) in grad.iter_mut().zip(row) {
                *g += 2.0 * resid * x;
            }
        }
        for (wi, g) in w.iter_mut().zip(&grad) {
            *wi -= step * g;
        }
        w = project_to_simplex(&w);
    }
    Ok(w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_small_system() {
        // 2x + y = 5 ; x - y = 1  =>  x = 2, y = 1
        let mut a = vec![2.0, 1.0, 1.0, -1.0];
        let mut b = vec![5.0, 1.0];
        let x = solve_linear_system(&mut a, &mut b, 2).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // First diagonal entry zero forces a row swap.
        let mut a = vec![0.0, 1.0, 1.0, 0.0];
        let mut b = vec![3.0, 4.0];
        let x = solve_linear_system(&mut a, &mut b, 2).unwrap();
        assert!((x[0] - 4.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn singular_system_is_reported() {
        let mut a = vec![1.0, 2.0, 2.0, 4.0];
        let mut b = vec![1.0, 2.0];
        assert_eq!(
            solve_linear_system(&mut a, &mut b, 2),
            Err(StatsError::SingularMatrix)
        );
    }

    #[test]
    fn ols_recovers_exact_linear_relationship() {
        // y = 3·x1 - 2·x2 + 7
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64, (i as f64).powf(1.3)])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 3.0 * r[0] - 2.0 * r[1] + 7.0).collect();
        let fit = ols(&rows, &y, true).unwrap();
        assert!((fit.coefficients[0] - 3.0).abs() < 1e-8);
        assert!((fit.coefficients[1] + 2.0).abs() < 1e-8);
        assert!((fit.coefficients[2] - 7.0).abs() < 1e-6);
        assert!(fit.rss < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ols_without_intercept() {
        let rows: Vec<Vec<f64>> = (1..10).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = rows.iter().map(|r| 2.5 * r[0]).collect();
        let fit = ols(&rows, &y, false).unwrap();
        assert_eq!(fit.coefficients.len(), 1);
        assert!((fit.coefficients[0] - 2.5).abs() < 1e-10);
    }

    #[test]
    fn ols_rejects_bad_shapes() {
        assert!(matches!(ols(&[], &[], true), Err(StatsError::EmptyInput)));
        assert!(matches!(
            ols(&[vec![1.0]], &[1.0, 2.0], true),
            Err(StatsError::LengthMismatch { .. })
        ));
        assert!(matches!(
            ols(&[vec![1.0, 2.0]], &[1.0], true),
            Err(StatsError::Underdetermined { .. })
        ));
    }

    #[test]
    fn simplex_projection_properties() {
        let cases: [&[f64]; 4] = [
            &[0.2, 0.3, 0.5],
            &[5.0, -3.0, 0.0],
            &[-1.0, -2.0],
            &[0.0, 0.0, 0.0, 0.0],
        ];
        for v in cases {
            let w = project_to_simplex(v);
            let sum: f64 = w.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "sum {sum} for {v:?}");
            assert!(w.iter().all(|&x| x >= -1e-12), "negative in {w:?}");
        }
        // Already on the simplex: fixed point.
        let w = project_to_simplex(&[0.2, 0.3, 0.5]);
        assert!((w[0] - 0.2).abs() < 1e-9);
        assert!((w[1] - 0.3).abs() < 1e-9);
        assert!((w[2] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn constrained_fit_recovers_convex_combination() {
        // y generated by weights (0.1, 0.6, 0.3); recoverable exactly since
        // the true optimum lies inside the simplex.
        let truth = [0.1, 0.6, 0.3];
        let rows: Vec<Vec<f64>> = (0..30)
            .map(|i| {
                let t = i as f64;
                vec![
                    (t * 0.37).sin().abs(),
                    (t * 0.11).cos().abs(),
                    (t * 0.77).sin().powi(2),
                ]
            })
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| r.iter().zip(&truth).map(|(x, w)| x * w).sum())
            .collect();
        let w = simplex_constrained_least_squares(&rows, &y, 20_000).unwrap();
        for (wi, ti) in w.iter().zip(&truth) {
            assert!((wi - ti).abs() < 0.01, "got {w:?}");
        }
    }

    #[test]
    fn constrained_fit_clamps_to_boundary() {
        // Best unconstrained weight on x1 is negative; the simplex fit should
        // park it at (or very near) zero.
        let rows: Vec<Vec<f64>> = (0..25).map(|i| vec![i as f64, 25.0 - i as f64]).collect();
        let y: Vec<f64> = rows.iter().map(|r| r[1]).collect();
        let w = simplex_constrained_least_squares(&rows, &y, 20_000).unwrap();
        assert!(w[0] < 0.05, "weights {w:?}");
        assert!(w[1] > 0.95, "weights {w:?}");
    }

    #[test]
    fn constrained_fit_rejects_bad_shapes() {
        assert!(matches!(
            simplex_constrained_least_squares(&[], &[], 10),
            Err(StatsError::EmptyInput)
        ));
        assert!(matches!(
            simplex_constrained_least_squares(&[vec![1.0]], &[1.0, 2.0], 10),
            Err(StatsError::LengthMismatch { .. })
        ));
    }
}
