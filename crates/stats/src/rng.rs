//! Deterministic random-number generation for reproducible experiments.
//!
//! Everything stochastic in the workspace — synthetic address streams,
//! machine idiosyncrasy factors, communication imbalance draws — must be
//! exactly reproducible so that the regenerated tables and figures are stable
//! artifacts. This module provides a small, fast SplitMix64 generator seeded
//! either directly or from a stable FNV-1a hash of a list of string labels
//! (e.g. `("avus-standard", "ARL_Opteron", "64", "idiosyncrasy")`).
//!
//! SplitMix64 is the seeding generator recommended by the xoshiro authors; it
//! passes BigCrush when used directly and is more than adequate for workload
//! synthesis (we are not doing cryptography or high-dimensional Monte Carlo).

/// The standard FNV-1a 64-bit offset basis (the hash of the empty string).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// The standard FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One FNV-1a mixing step: fold `byte` into the running `hash`.
///
/// This is the streaming form of [`fnv1a`]; hashing a byte string step by
/// step from [`FNV_OFFSET`] produces exactly the batch result. Cache keys,
/// chaos-site draws, RNG seeding, and dataflow node ids all share this one
/// primitive, so a hash equality in one layer means the same thing in every
/// other.
#[must_use]
pub const fn fnv1a_step(hash: u64, byte: u8) -> u64 {
    (hash ^ byte as u64).wrapping_mul(FNV_PRIME)
}

/// Stable 64-bit FNV-1a hash of a byte string.
///
/// Used to derive RNG seeds from human-readable labels. The constants are the
/// standard FNV-1a 64-bit offset basis and prime, so hashes are stable across
/// platforms, Rust versions, and process runs (unlike `std::hash`).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h = fnv1a_step(h, b);
    }
    h
}

/// FNV-1a over a sequence of string labels with an explicit separator byte
/// folded in *before* each label, so label boundaries cannot alias —
/// `["ab", "c"]` and `["a", "bc"]` hash differently, and a shorter prefix
/// never collides with its own extension.
#[must_use]
pub fn fnv1a_labels(seed: u64, labels: &[&str], separator: u8) -> u64 {
    let mut h = seed;
    for label in labels {
        h = fnv1a_step(h, separator);
        for byte in label.bytes() {
            h = fnv1a_step(h, byte);
        }
    }
    h
}

/// Derive a seed from a sequence of string labels.
///
/// Labels are separated by an ASCII unit separator so that
/// `("ab", "c")` and `("a", "bc")` hash differently.
#[must_use]
pub fn seed_from_labels(labels: &[&str]) -> u64 {
    // Streamed through the shared step so no buffer is built; the byte
    // sequence (label then separator, per label) is unchanged, so every
    // seed — and every study output derived from one — stays identical.
    let mut h = FNV_OFFSET;
    for l in labels {
        for byte in l.bytes() {
            h = fnv1a_step(h, byte);
        }
        h = fnv1a_step(h, 0x1f);
    }
    h
}

/// A deterministic SplitMix64 pseudo-random generator.
///
/// Cheap to construct (two words of state is one word — just the counter),
/// `Copy`-free by design so accidental state duplication is visible, and
/// entirely allocation-free.
#[derive(Debug, Clone)]
pub struct SeededRng {
    state: u64,
}

impl SeededRng {
    /// Construct from a raw 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Construct from stable string labels (see [`seed_from_labels`]).
    #[must_use]
    pub fn from_labels(labels: &[&str]) -> Self {
        Self::new(seed_from_labels(labels))
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`, using the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be nonzero.
    ///
    /// Uses Lemire's multiply-shift rejection method for unbiased results.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be nonzero");
        // Lemire's method: rejection zone keeps the mapping unbiased.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi >= lo, "uniform range inverted");
        lo + (hi - lo) * self.next_f64()
    }

    /// Standard normal draw via Box–Muller (one value per call; the twin is
    /// discarded to keep state evolution simple and branch-free).
    pub fn normal(&mut self) -> f64 {
        // Avoid ln(0) by mapping the first draw into (0, 1].
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal draw with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.normal()
    }

    /// Lognormal multiplicative factor with median 1 and log-space standard
    /// deviation `sigma`. This is what the ground-truth model uses for the
    /// per-(machine, application) idiosyncrasy term.
    pub fn lognormal_factor(&mut self, sigma: f64) -> f64 {
        (sigma * self.normal()).exp()
    }

    /// Fisher–Yates shuffle (deterministic given the RNG state).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        if xs.len() < 2 {
            return;
        }
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Pick one element of a non-empty slice uniformly.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "choose on empty slice");
        &xs[self.next_below(xs.len() as u64) as usize]
    }

    /// Sample an index from a discrete distribution given non-negative
    /// weights (not necessarily normalized). Panics if all weights are zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weighted_index: weights sum to zero");
        let mut target = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            debug_assert!(w >= 0.0, "negative weight");
            if target < w {
                return i;
            }
            target -= w;
        }
        // Floating-point slop: return the last nonzero weight.
        weights
            .iter()
            .rposition(|&w| w > 0.0)
            .expect("at least one positive weight")
    }

    /// Fork a child generator labelled by `label`, leaving `self` untouched
    /// except for one state advance. Children with different labels are
    /// decorrelated even when forked from the same parent state.
    pub fn fork(&mut self, label: &str) -> SeededRng {
        let base = self.next_u64();
        SeededRng::new(base ^ fnv1a(label.as_bytes()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
        assert_eq!(fnv1a(b""), FNV_OFFSET);
    }

    #[test]
    fn streaming_steps_match_the_batch_hash() {
        let bytes = b"the streaming form must equal the batch form";
        let streamed = bytes.iter().fold(FNV_OFFSET, |h, &b| fnv1a_step(h, b));
        assert_eq!(streamed, fnv1a(bytes));
    }

    #[test]
    fn label_hashing_separates_boundaries_and_seeds() {
        // Boundary aliasing: ["ab","c"] vs ["a","bc"].
        assert_ne!(
            fnv1a_labels(FNV_OFFSET, &["ab", "c"], 0x1f),
            fnv1a_labels(FNV_OFFSET, &["a", "bc"], 0x1f)
        );
        // Prefix aliasing: a label list never collides with its extension.
        assert_ne!(
            fnv1a_labels(FNV_OFFSET, &["a"], 0x1f),
            fnv1a_labels(FNV_OFFSET, &["a", ""], 0x1f)
        );
        // The seed participates.
        assert_ne!(fnv1a_labels(1, &["a"], 0x1f), fnv1a_labels(2, &["a"], 0x1f));
        // And the separator byte does too.
        assert_ne!(
            fnv1a_labels(FNV_OFFSET, &["a", "b"], 0x1f),
            fnv1a_labels(FNV_OFFSET, &["a", "b"], 0xff)
        );
    }

    #[test]
    fn label_separation_prevents_collisions() {
        assert_ne!(
            seed_from_labels(&["ab", "c"]),
            seed_from_labels(&["a", "bc"])
        );
        assert_ne!(seed_from_labels(&["a"]), seed_from_labels(&["a", ""]));
    }

    #[test]
    fn sequence_is_deterministic() {
        let mut a = SeededRng::new(42);
        let mut b = SeededRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SeededRng::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut r = SeededRng::new(99);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let x = r.next_below(7) as usize;
            assert!(x < 7);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn next_below_zero_panics() {
        SeededRng::new(1).next_below(0);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = SeededRng::new(5);
        for _ in 0..1_000 {
            let x = r.uniform(-3.0, 9.0);
            assert!((-3.0..9.0).contains(&x));
        }
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut r = SeededRng::new(123);
        let n = 40_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn lognormal_factor_has_median_near_one() {
        let mut r = SeededRng::new(321);
        let mut xs: Vec<f64> = (0..10_001).map(|_| r.lognormal_factor(0.15)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[5_000];
        assert!((median - 1.0).abs() < 0.02, "median {median}");
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SeededRng::new(8);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // and with seed fixed, the permutation is stable
        let mut r2 = SeededRng::new(8);
        let mut ys: Vec<u32> = (0..50).collect();
        r2.shuffle(&mut ys);
        assert_eq!(xs, ys);
    }

    #[test]
    fn shuffle_handles_tiny_slices() {
        let mut r = SeededRng::new(1);
        let mut empty: [u8; 0] = [];
        r.shuffle(&mut empty);
        let mut one = [42u8];
        r.shuffle(&mut one);
        assert_eq!(one, [42]);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = SeededRng::new(77);
        let weights = [0.0, 3.0, 1.0];
        let mut counts = [0usize; 3];
        for _ in 0..8_000 {
            counts[r.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((ratio - 3.0).abs() < 0.4, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "sum to zero")]
    fn weighted_index_zero_weights_panics() {
        SeededRng::new(1).weighted_index(&[0.0, 0.0]);
    }

    #[test]
    fn fork_decorrelates_children() {
        let mut parent = SeededRng::new(10);
        let mut a = parent.clone().fork("alpha");
        let mut b = parent.fork("beta");
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn choose_returns_member() {
        let mut r = SeededRng::new(3);
        let xs = [10, 20, 30];
        for _ in 0..100 {
            assert!(xs.contains(r.choose(&xs)));
        }
    }
}
