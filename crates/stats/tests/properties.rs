//! Property-based tests for the statistics substrate.

use metasim_stats::correlation::{kendall_tau, pearson, ranks, spearman};
use metasim_stats::descriptive::{
    geometric_mean, mean, median, quantile_sorted, stddev, Summary, Welford,
};
use metasim_stats::error_metrics::{percent_error, ErrorAccumulator};
use metasim_stats::regression::{ols, project_to_simplex, simplex_constrained_least_squares};
use metasim_stats::rng::SeededRng;
use proptest::prelude::*;

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 1..max_len)
}

proptest! {
    #[test]
    fn mean_is_between_min_and_max(xs in finite_vec(64)) {
        let m = mean(&xs).unwrap();
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }

    #[test]
    fn stddev_is_nonnegative_and_shift_invariant(xs in finite_vec(64), shift in -1e3f64..1e3) {
        let sd = stddev(&xs).unwrap();
        prop_assert!(sd >= 0.0);
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        let sd2 = stddev(&shifted).unwrap();
        prop_assert!((sd - sd2).abs() < 1e-6 * (1.0 + sd.abs()));
    }

    #[test]
    fn welford_agrees_with_batch(xs in finite_vec(128)) {
        let mut w = Welford::new();
        xs.iter().for_each(|&x| w.push(x));
        let scale = 1.0 + xs.iter().map(|x| x.abs()).fold(0.0, f64::max);
        prop_assert!((w.mean() - mean(&xs).unwrap()).abs() < 1e-8 * scale);
        prop_assert!((w.stddev() - stddev(&xs).unwrap()).abs() < 1e-6 * scale);
    }

    #[test]
    fn welford_merge_is_order_independent(xs in finite_vec(64), ys in finite_vec(64)) {
        let mut a = Welford::new();
        xs.iter().for_each(|&x| a.push(x));
        let mut b = Welford::new();
        ys.iter().for_each(|&y| b.push(y));
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        let scale = 1.0 + ab.mean().abs();
        prop_assert!((ab.mean() - ba.mean()).abs() < 1e-8 * scale);
        prop_assert!((ab.stddev() - ba.stddev()).abs() < 1e-6 * scale);
        prop_assert_eq!(ab.count(), ba.count());
    }

    #[test]
    fn quantiles_are_monotone(mut xs in finite_vec(64), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (qa, qb) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let va = quantile_sorted(&xs, qa).unwrap();
        let vb = quantile_sorted(&xs, qb).unwrap();
        prop_assert!(va <= vb + 1e-9);
    }

    #[test]
    fn median_is_a_quantile(xs in finite_vec(64)) {
        let m = median(&xs).unwrap();
        let below = xs.iter().filter(|&&x| x <= m + 1e-12).count();
        let above = xs.iter().filter(|&&x| x >= m - 1e-12).count();
        prop_assert!(below * 2 >= xs.len());
        prop_assert!(above * 2 >= xs.len());
    }

    #[test]
    fn percent_error_round_trip(actual in 1e-3f64..1e6, signed in -99.0f64..500.0) {
        let predicted = actual * (1.0 + signed / 100.0);
        let e = percent_error(metasim_units::Seconds::new(predicted), metasim_units::Seconds::new(actual));
        prop_assert!((e.get() - signed).abs() < 1e-6 * (1.0 + signed.abs()));
    }

    #[test]
    fn error_accumulator_mean_abs_bounds_mean_signed(pairs in prop::collection::vec((1e-3f64..1e4, 1e-3f64..1e4), 1..64)) {
        let mut acc = ErrorAccumulator::new();
        for (p, a) in &pairs {
            acc.record(metasim_units::Seconds::new(*p), metasim_units::Seconds::new(*a));
        }
        prop_assert!(acc.mean_absolute() >= acc.mean_signed().abs() - 1e-9);
        prop_assert!(acc.mean_absolute() >= 0.0);
        prop_assert_eq!(acc.count(), pairs.len() as u64);
    }

    #[test]
    fn ranks_are_a_permutation_sum(xs in finite_vec(64)) {
        let r = ranks(&xs);
        let n = xs.len() as f64;
        let total: f64 = r.iter().sum();
        // Sum of mid-ranks is always n(n+1)/2 regardless of ties.
        prop_assert!((total - n * (n + 1.0) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn pearson_is_bounded_and_symmetric(xs in finite_vec(64), seed in 0u64..1000) {
        prop_assume!(xs.len() >= 2);
        let mut rng = SeededRng::new(seed);
        let ys: Vec<f64> = xs.iter().map(|x| x * 0.5 + rng.normal() * 10.0).collect();
        if let (Ok(rxy), Ok(ryx)) = (pearson(&xs, &ys), pearson(&ys, &xs)) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&rxy));
            prop_assert!((rxy - ryx).abs() < 1e-9);
        }
    }

    #[test]
    fn spearman_invariant_under_monotone_transform(xs in prop::collection::vec(-20.0f64..20.0, 3..32)) {
        let ys: Vec<f64> = xs.iter().map(|x| x * 3.0 + 1.0).collect();
        let zs: Vec<f64> = xs.iter().map(|&x: &f64| x.exp()).collect();
        if let (Ok(a), Ok(b)) = (spearman(&xs, &ys), spearman(&xs, &zs)) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn kendall_is_antisymmetric_under_negation(xs in prop::collection::vec(-50.0f64..50.0, 2..32), seed in 0u64..100) {
        let mut rng = SeededRng::new(seed);
        let ys: Vec<f64> = xs.iter().map(|_| rng.normal()).collect();
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        if let (Ok(t), Ok(tn)) = (kendall_tau(&xs, &ys), kendall_tau(&xs, &neg)) {
            prop_assert!((t + tn).abs() < 1e-9);
        }
    }

    #[test]
    fn simplex_projection_is_idempotent(v in prop::collection::vec(-10.0f64..10.0, 1..16)) {
        let w = project_to_simplex(&v);
        let w2 = project_to_simplex(&w);
        for (a, b) in w.iter().zip(&w2) {
            prop_assert!((a - b).abs() < 1e-9);
        }
        prop_assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constrained_weights_never_leave_simplex(
        n in 2usize..5,
        seed in 0u64..500,
    ) {
        let mut rng = SeededRng::new(seed);
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|_| (0..n).map(|_| rng.next_f64()).collect())
            .collect();
        let y: Vec<f64> = (0..20).map(|_| rng.next_f64()).collect();
        let w = simplex_constrained_least_squares(&rows, &y, 500).unwrap();
        prop_assert_eq!(w.len(), n);
        prop_assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        prop_assert!(w.iter().all(|&x| x >= -1e-9));
    }

    #[test]
    fn ols_residuals_orthogonal_to_predictors(seed in 0u64..500) {
        let mut rng = SeededRng::new(seed);
        let rows: Vec<Vec<f64>> = (0..30)
            .map(|_| vec![rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0)])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0] - 2.0 * r[1] + rng.normal()).collect();
        let fit = ols(&rows, &y, true).unwrap();
        // Normal equations imply Xᵀ(y − Xβ) = 0.
        for j in 0..2 {
            let dot: f64 = rows
                .iter()
                .zip(&y)
                .map(|(r, &yi)| {
                    let pred = fit.coefficients[0] * r[0]
                        + fit.coefficients[1] * r[1]
                        + fit.coefficients[2];
                    r[j] * (yi - pred)
                })
                .sum();
            prop_assert!(dot.abs() < 1e-6, "dot[{}] = {}", j, dot);
        }
    }

    #[test]
    fn geometric_mean_bounded_by_arithmetic(xs in prop::collection::vec(1e-3f64..1e3, 1..32)) {
        let g = geometric_mean(&xs).unwrap();
        let a = mean(&xs).unwrap();
        prop_assert!(g <= a + 1e-9 * a.abs().max(1.0));
    }

    #[test]
    fn summary_consistency(xs in finite_vec(64)) {
        let s = Summary::from_slice(&xs);
        prop_assert_eq!(s.n, xs.len());
        prop_assert!(s.min <= s.mean + 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
        prop_assert!(s.stddev <= (s.max - s.min) + 1e-9);
    }

    #[test]
    fn rng_next_below_uniform_support(bound in 1u64..100, seed in 0u64..100) {
        let mut r = SeededRng::new(seed);
        for _ in 0..200 {
            prop_assert!(r.next_below(bound) < bound);
        }
    }
}
