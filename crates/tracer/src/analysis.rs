//! Static binary analysis stand-in: dependency flags for Metric #9.
//!
//! "Static analysis was applied to the binary executable for each
//! application on the base system, so ILP limited basic blocks could be
//! identified" (§3). The real analyzer (written by Xiaofeng Gao, per the
//! acknowledgements) inspects instruction dependence chains. Our synthetic
//! applications construct blocks with known dependency classes; the analyzer
//! stand-in recovers those labels from block *structure* the way a real
//! analyzer would — with one deliberate blind spot: a chained block whose
//! flop intensity is high enough hides its dependency behind arithmetic,
//! which real static analysis also struggles to prove harmful.

use serde::{Deserialize, Serialize};

use crate::block::{DependencyClass, TracedBlock};

/// Flop-per-reference ratio above which a chained block's dependency is
/// masked by arithmetic and the analyzer reports it independent.
pub const MASKING_INTENSITY: f64 = 8.0;

/// One block's analysis verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DependencyVerdict {
    /// What the analyzer decided.
    pub detected: DependencyClass,
    /// Whether the verdict matches the block's true class.
    pub exact: bool,
}

/// Analyze one block.
#[must_use]
pub fn analyze_block(block: &TracedBlock) -> DependencyVerdict {
    let refs = block.mem_refs().max(1);
    let intensity = block.flops as f64 / refs as f64;
    let detected = match block.dependency {
        DependencyClass::Chained if intensity > MASKING_INTENSITY => DependencyClass::Independent,
        other => other,
    };
    DependencyVerdict {
        detected,
        exact: detected == block.dependency,
    }
}

/// Analyze a block list, returning the detected class per block (the labels
/// Metric #9's convolution consumes).
#[must_use]
pub fn analyze_dependencies(blocks: &[TracedBlock]) -> Vec<DependencyClass> {
    blocks.iter().map(|b| analyze_block(b).detected).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::StrideBins;

    fn block(flops: u64, refs: u64, dep: DependencyClass) -> TracedBlock {
        TracedBlock {
            name: "b".into(),
            flops,
            bins: StrideBins {
                stride1: refs,
                short: 0,
                random: 0,
            },
            working_set: 4096,
            dependency: dep,
            invocations: 1,
        }
    }

    #[test]
    fn plain_blocks_are_detected_exactly() {
        for dep in [
            DependencyClass::Independent,
            DependencyClass::Chained,
            DependencyClass::Branchy,
        ] {
            let v = analyze_block(&block(100, 100, dep));
            assert_eq!(v.detected, dep);
            assert!(v.exact);
        }
    }

    #[test]
    fn high_intensity_masks_chains() {
        let v = analyze_block(&block(10_000, 100, DependencyClass::Chained));
        assert_eq!(v.detected, DependencyClass::Independent);
        assert!(!v.exact);
    }

    #[test]
    fn high_intensity_does_not_mask_branches() {
        let v = analyze_block(&block(10_000, 100, DependencyClass::Branchy));
        assert_eq!(v.detected, DependencyClass::Branchy);
    }

    #[test]
    fn batch_analysis_preserves_order() {
        let blocks = vec![
            block(1, 100, DependencyClass::Independent),
            block(1, 100, DependencyClass::Chained),
            block(10_000, 100, DependencyClass::Chained),
        ];
        let labels = analyze_dependencies(&blocks);
        assert_eq!(
            labels,
            vec![
                DependencyClass::Independent,
                DependencyClass::Chained,
                DependencyClass::Independent,
            ]
        );
    }

    #[test]
    fn zero_ref_block_does_not_divide_by_zero() {
        let mut b = block(100, 0, DependencyClass::Chained);
        b.bins = StrideBins::default();
        // intensity = 100/1 > threshold => masked
        let v = analyze_block(&b);
        assert_eq!(v.detected, DependencyClass::Independent);
    }
}
