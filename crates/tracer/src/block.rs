//! Basic-block profiles: the unit of the convolution methodology.
//!
//! "Operation counts, once determined by tracing, are divided by
//! corresponding operation rates … to yield an execution time for the
//! current basic block per operation type" (§3). A [`TracedBlock`] carries
//! everything the convolver needs about one block: per-invocation operation
//! counts, the stride classification of its references, its working set, and
//! its dependency class.

use metasim_audit::registry::MS202;
use metasim_audit::{audit_value, AuditReport, Auditor};
use serde::{Deserialize, Serialize};

/// Counts of memory references by stride class (the stride detector's
/// output).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StrideBins {
    /// Stride-1 references.
    pub stride1: u64,
    /// Non-unit short strides (2–8 elements).
    pub short: u64,
    /// Random-stride references.
    pub random: u64,
}

impl StrideBins {
    /// Total references.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.stride1 + self.short + self.random
    }

    /// Fraction that is stride-1 (0 if empty).
    #[must_use]
    pub fn stride1_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.stride1 as f64 / t as f64
        }
    }

    /// Fraction that is short-stride.
    #[must_use]
    pub fn short_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.short as f64 / t as f64
        }
    }

    /// Fraction that is random.
    #[must_use]
    pub fn random_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.random as f64 / t as f64
        }
    }

    /// Component-wise sum.
    #[must_use]
    pub fn merged(&self, other: &StrideBins) -> StrideBins {
        StrideBins {
            stride1: self.stride1 + other.stride1,
            short: self.short + other.short,
            random: self.random + other.random,
        }
    }

    /// Scale every bin by an integer factor (weighting by invocations).
    #[must_use]
    pub fn scaled(&self, factor: u64) -> StrideBins {
        StrideBins {
            stride1: self.stride1 * factor,
            short: self.short * factor,
            random: self.random * factor,
        }
    }
}

/// ILP structure of the loop a block came from (what the paper's static
/// binary analysis labels for Metric #9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum DependencyClass {
    /// Independent iterations; the machine may overlap freely.
    #[default]
    Independent,
    /// Loop-carried data dependency limits ILP.
    Chained,
    /// A data-dependent branch inside the loop body.
    Branchy,
}

/// One traced basic block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TracedBlock {
    /// Human-readable name (e.g. `"flux_sweep"`).
    pub name: String,
    /// Floating-point operations per invocation (per process).
    pub flops: u64,
    /// Memory references per invocation, classified by stride.
    pub bins: StrideBins,
    /// Working set the block touches per invocation, bytes.
    pub working_set: u64,
    /// Dependency class (ground truth for the static analyzer).
    pub dependency: DependencyClass,
    /// Number of invocations during the traced run.
    pub invocations: u64,
}

impl TracedBlock {
    /// Total memory references per invocation.
    #[must_use]
    pub fn mem_refs(&self) -> u64 {
        self.bins.total()
    }

    /// Total flops across all invocations.
    #[must_use]
    pub fn total_flops(&self) -> u64 {
        self.flops * self.invocations
    }

    /// Total memory references across all invocations.
    #[must_use]
    pub fn total_mem_refs(&self) -> u64 {
        self.mem_refs() * self.invocations
    }

    /// Emit [`MS202`] block-consistency diagnostics.
    pub fn audit(&self, a: &mut Auditor) {
        if self.name.is_empty() {
            a.finding_at(&MS202, "name", "block name must not be empty");
        }
        if self.invocations == 0 {
            a.finding_at(
                &MS202,
                "invocations",
                format!("block {}: zero invocations", self.name),
            );
        }
        if self.flops == 0 && self.mem_refs() == 0 {
            a.finding(&MS202, format!("block {}: no work at all", self.name));
        }
        if self.mem_refs() > 0 && self.working_set == 0 {
            a.finding_at(
                &MS202,
                "working_set",
                format!(
                    "block {}: memory references but zero working set",
                    self.name
                ),
            );
        }
    }

    /// Sanity-check internal consistency.
    ///
    /// # Errors
    /// The audit report, when any error-severity finding fires.
    pub fn validate(&self) -> Result<(), AuditReport> {
        audit_value(|a| self.audit(a)).into_result().map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block() -> TracedBlock {
        TracedBlock {
            name: "flux".into(),
            flops: 1000,
            bins: StrideBins {
                stride1: 600,
                short: 100,
                random: 300,
            },
            working_set: 1 << 20,
            dependency: DependencyClass::Independent,
            invocations: 50,
        }
    }

    #[test]
    fn bin_fractions_sum_to_one() {
        let b = block().bins;
        let s = b.stride1_fraction() + b.short_fraction() + b.random_fraction();
        assert!((s - 1.0).abs() < 1e-12);
        assert_eq!(b.total(), 1000);
    }

    #[test]
    fn empty_bins_have_zero_fractions() {
        let b = StrideBins::default();
        assert_eq!(b.stride1_fraction(), 0.0);
        assert_eq!(b.short_fraction(), 0.0);
        assert_eq!(b.random_fraction(), 0.0);
    }

    #[test]
    fn merge_and_scale() {
        let a = StrideBins {
            stride1: 1,
            short: 2,
            random: 3,
        };
        let b = StrideBins {
            stride1: 10,
            short: 20,
            random: 30,
        };
        let m = a.merged(&b);
        assert_eq!(
            m,
            StrideBins {
                stride1: 11,
                short: 22,
                random: 33
            }
        );
        assert_eq!(
            a.scaled(4),
            StrideBins {
                stride1: 4,
                short: 8,
                random: 12
            }
        );
    }

    #[test]
    fn block_totals_respect_invocations() {
        let b = block();
        assert_eq!(b.mem_refs(), 1000);
        assert_eq!(b.total_flops(), 50_000);
        assert_eq!(b.total_mem_refs(), 50_000);
    }

    #[test]
    fn validation_catches_degenerate_blocks() {
        let mut b = block();
        b.name.clear();
        let report = b.validate().unwrap_err();
        assert!(report.has_code("MS202"), "{report}");
        assert_eq!(report.diagnostics[0].subject, "name");

        let mut b = block();
        b.invocations = 0;
        assert!(b.validate().unwrap_err().has_code("MS202"));

        let mut b = block();
        b.flops = 0;
        b.bins = StrideBins::default();
        assert!(b.validate().is_err());

        let mut b = block();
        b.working_set = 0;
        assert!(b.validate().is_err());

        block().validate().unwrap();
    }

    #[test]
    fn flop_only_block_is_valid_without_working_set() {
        let b = TracedBlock {
            name: "daxpy_registers".into(),
            flops: 10,
            bins: StrideBins::default(),
            working_set: 0,
            dependency: DependencyClass::Independent,
            invocations: 1,
        };
        b.validate().unwrap();
    }
}
