//! Performance-counter mode: the cheap collection path for Metrics #4–#5.
//!
//! "MetaSim Tracer is not the most efficient means for collecting such
//! dynamic operation counts … performance counters provide a more
//! expeditious result" (§3). Counters see *totals only* — flops and
//! load/stores — with no stride classification, no per-block resolution, and
//! no working sets. Deriving a [`HardwareCounters`] from a full trace
//! deliberately throws that structure away, which is exactly why Metrics #4
//! and #5 are as blunt as they are.

use serde::{Deserialize, Serialize};

use crate::trace::ApplicationTrace;

/// What PAPI-style counters report for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HardwareCounters {
    /// Total floating-point operations (per process).
    pub flops: u64,
    /// Total load/store instructions (per process).
    pub mem_refs: u64,
}

impl HardwareCounters {
    /// "Read the counters" for a run described by a full trace: totals only.
    #[must_use]
    pub fn from_trace(trace: &ApplicationTrace) -> Self {
        Self {
            flops: trace.total_flops(),
            mem_refs: trace.total_mem_refs(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{DependencyClass, StrideBins, TracedBlock};
    use crate::mpi::MpiTrace;

    #[test]
    fn counters_are_trace_totals() {
        let trace = ApplicationTrace {
            app: "X".into(),
            case: "std".into(),
            processes: 4,
            blocks: vec![TracedBlock {
                name: "k".into(),
                flops: 7,
                bins: StrideBins {
                    stride1: 3,
                    short: 2,
                    random: 1,
                },
                working_set: 64,
                dependency: DependencyClass::Independent,
                invocations: 5,
            }],
            mpi: MpiTrace::empty(4),
        };
        let c = HardwareCounters::from_trace(&trace);
        assert_eq!(c.flops, 35);
        assert_eq!(c.mem_refs, 30);
    }
}
