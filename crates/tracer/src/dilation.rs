//! The cost of tracing: dilation accounting.
//!
//! "MetaSim has been carefully streamlined for speed, imposing approximately
//! a 30× slowdown on an instrumented application" while TI-05 test cases run
//! 1–4 hours natively (§3). The paper stresses that this cost is
//! *non-recurring* — tracing happens once per application on the base
//! system — and asks "was the increase in accuracy worth the effort?". This
//! module gives the workspace a concrete model of that trade so reports can
//! answer the question with numbers.

use serde::{Deserialize, Serialize};

/// MetaSim's approximate tracing dilation factor (§3).
pub const METASIM_DILATION: f64 = 30.0;

/// Dilation of the performance-counter collection mode: counters run at
/// native speed plus a trivial multiplexing overhead.
pub const COUNTER_DILATION: f64 = 1.05;

/// Cost model for collecting one application's signature.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracingCost {
    /// Native runtime of the traced case on the base system, seconds.
    pub native_seconds: f64,
    /// Slowdown factor of the collection method.
    pub dilation: f64,
}

impl TracingCost {
    /// Full MetaSim tracing of a run with the given native runtime.
    #[must_use]
    pub fn metasim(native_seconds: f64) -> Self {
        Self {
            native_seconds,
            dilation: METASIM_DILATION,
        }
    }

    /// Counter-mode collection of the same run.
    #[must_use]
    pub fn counters(native_seconds: f64) -> Self {
        Self {
            native_seconds,
            dilation: COUNTER_DILATION,
        }
    }

    /// Wall-clock seconds the collection takes.
    #[must_use]
    pub fn collection_seconds(&self) -> f64 {
        self.native_seconds * self.dilation
    }

    /// Collection cost amortized over `n_targets` target systems — the
    /// paper's point that tracing "is only required once per application on
    /// the base system".
    #[must_use]
    pub fn amortized_seconds(&self, n_targets: u32) -> f64 {
        assert!(n_targets > 0, "amortizing over zero targets");
        self.collection_seconds() / f64::from(n_targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metasim_is_thirty_x() {
        let c = TracingCost::metasim(3600.0);
        assert!((c.collection_seconds() - 108_000.0).abs() < 1e-9);
    }

    #[test]
    fn counters_are_nearly_free() {
        let c = TracingCost::counters(3600.0);
        assert!(c.collection_seconds() < 3600.0 * 1.1);
        assert!(c.collection_seconds() > 3600.0);
    }

    #[test]
    fn amortization_divides() {
        let c = TracingCost::metasim(1000.0);
        assert!((c.amortized_seconds(10) - 3000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "zero targets")]
    fn zero_targets_panics() {
        let _ = TracingCost::metasim(1.0).amortized_seconds(0);
    }
}
