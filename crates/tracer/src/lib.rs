//! MetaSim Tracer and MPIDTRACE equivalents.
//!
//! The paper's predictive metrics (#4–#9) consume an application *signature*
//! collected once on the base system:
//!
//! * **Operation counts per basic block** — floating-point operations and
//!   memory references ([`block::TracedBlock`]).
//! * **Memory reference classification** — MetaSim Tracer "parses the
//!   address stream with a stride detector, thus determining what portion of
//!   memory references are stride-1, non-unit short strides (up to
//!   stride-8), and random stride" (§3). [`stride::StrideDetector`]
//!   implements exactly that, over real address sequences.
//! * **Working-set estimates per block** — distinct lines touched, which the
//!   MAPS-based metrics (#7–#9) use to pick a point on the bandwidth curve.
//! * **Communication events** — MPIDTRACE's counts of MPI operations and
//!   sizes ([`mpi::MpiTrace`], built on `metasim_netsim` event types).
//! * **Dependency flags** — the static binary analysis (§3, Metric #9) that
//!   identifies ILP-limited basic blocks ([`analysis`]).
//!
//! The crate also models what tracing *costs* ([`dilation`]): MetaSim
//! imposes ~30× dilation, the number the paper weighs when asking whether a
//! metric's accuracy gain was worth its collection effort. The
//! performance-counter mode ([`counters`]) is the cheap alternative that
//! suffices for Metrics #4–#5.

pub mod analysis;
pub mod block;
pub mod counters;
pub mod dilation;
pub mod mpi;
pub mod stream_table;
pub mod stride;
pub mod trace;

pub use analysis::analyze_dependencies;
pub use block::{DependencyClass, StrideBins, TracedBlock};
pub use counters::HardwareCounters;
pub use dilation::TracingCost;
pub use mpi::MpiTrace;
pub use stream_table::StreamTableDetector;
pub use stride::StrideDetector;
pub use trace::ApplicationTrace;
