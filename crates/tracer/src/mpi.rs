//! The MPIDTRACE equivalent: communication event traces.
//!
//! "MPIDTRACE \[counts\] MPI communications events in applications" (§3,
//! Metric #8). An [`MpiTrace`] is the per-process event census of one run:
//! operation kinds, payload sizes, and counts, expressed in
//! [`metasim_netsim::replay::CommEvent`]s so both the ground-truth replay
//! and the Metric #8 convolution consume the same artifact.

use serde::{Deserialize, Serialize};

use metasim_netsim::replay::{CommEvent, CommOp};

/// A traced communication signature for one (application, process-count)
/// pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MpiTrace {
    /// Processes in the traced run.
    pub processes: u64,
    /// The event census.
    pub events: Vec<CommEvent>,
}

impl MpiTrace {
    /// An empty trace (serial run).
    #[must_use]
    pub fn empty(processes: u64) -> Self {
        Self {
            processes,
            events: Vec::new(),
        }
    }

    /// Total messages (point-to-point count + one per collective).
    #[must_use]
    pub fn message_count(&self) -> u64 {
        self.events.iter().map(|e| e.count).sum()
    }

    /// Total payload bytes across all events.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.events.iter().map(CommEvent::total_bytes).sum()
    }

    /// Number of collective operations (everything but point-to-point).
    #[must_use]
    pub fn collective_count(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| !matches!(e.op, CommOp::PointToPoint { .. }))
            .map(|e| e.count)
            .sum()
    }

    /// Mean point-to-point message size in bytes (0 if none).
    #[must_use]
    pub fn mean_p2p_bytes(&self) -> f64 {
        let (bytes, count) = self
            .events
            .iter()
            .filter_map(|e| match e.op {
                CommOp::PointToPoint { bytes } => Some((bytes * e.count, e.count)),
                _ => None,
            })
            .fold((0u64, 0u64), |(b, c), (eb, ec)| (b + eb, c + ec));
        if count == 0 {
            0.0
        } else {
            bytes as f64 / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> MpiTrace {
        MpiTrace {
            processes: 64,
            events: vec![
                CommEvent::new(CommOp::PointToPoint { bytes: 1000 }, 10),
                CommEvent::new(CommOp::PointToPoint { bytes: 3000 }, 10),
                CommEvent::new(CommOp::AllReduce { bytes: 8 }, 5),
                CommEvent::new(CommOp::Barrier, 2),
            ],
        }
    }

    #[test]
    fn census_accounting() {
        let t = trace();
        assert_eq!(t.message_count(), 27);
        assert_eq!(t.total_bytes(), 10_000 + 30_000 + 40);
        assert_eq!(t.collective_count(), 7);
        assert!((t.mean_p2p_bytes() - 2000.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace() {
        let t = MpiTrace::empty(16);
        assert_eq!(t.processes, 16);
        assert_eq!(t.message_count(), 0);
        assert_eq!(t.total_bytes(), 0);
        assert_eq!(t.mean_p2p_bytes(), 0.0);
    }
}
