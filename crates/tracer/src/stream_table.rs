//! Per-stream stride detection: the EMPS-style detector that tracks each
//! load/store instruction (stream) separately.
//!
//! The global [`crate::stride::StrideDetector`] classifies the *merged*
//! address stream, which mis-bins references at interleave boundaries —
//! fine for block-chunked workloads, but a real binary interleaves several
//! reference streams per loop iteration. MetaSim's tracer (via EMPS, the
//! paper's reference \[12\]) keys detector state by instruction PC. This
//! module reproduces that: callers tag each reference with a stream id (a
//! PC stand-in) and each stream classifies against its own last address.

use std::collections::HashMap;

use crate::block::StrideBins;
use crate::stride::{StrideClass, StrideDetector};

/// A stride detector with per-stream (per-PC) state.
#[derive(Debug, Clone, Default)]
pub struct StreamTableDetector {
    last: HashMap<u64, u64>,
    bins: StrideBins,
}

impl StreamTableDetector {
    /// Fresh detector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Observe one reference from stream `stream_id` (e.g. the issuing
    /// instruction's PC). Returns its classification.
    pub fn observe(&mut self, stream_id: u64, addr: u64) -> StrideClass {
        let class = match self.last.insert(stream_id, addr) {
            None => StrideClass::Random,
            Some(prev) => StrideDetector::classify_delta(prev, addr),
        };
        match class {
            StrideClass::Unit => self.bins.stride1 += 1,
            StrideClass::Short => self.bins.short += 1,
            StrideClass::Random => self.bins.random += 1,
        }
        class
    }

    /// Observe a slice of `(stream_id, addr)` pairs.
    pub fn observe_all(&mut self, refs: &[(u64, u64)]) {
        for &(sid, addr) in refs {
            self.observe(sid, addr);
        }
    }

    /// Accumulated bins.
    #[must_use]
    pub fn bins(&self) -> StrideBins {
        self.bins
    }

    /// Streams seen so far.
    #[must_use]
    pub fn stream_count(&self) -> usize {
        self.last.len()
    }

    /// Reset all state.
    pub fn reset(&mut self) {
        self.last.clear();
        self.bins = StrideBins::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metasim_stats::rng::SeededRng;

    /// Interleave two unit-stride streams reference-by-reference.
    fn interleaved_unit_streams(n: usize) -> Vec<(u64, u64)> {
        (0..n)
            .map(|i| {
                let sid = (i % 2) as u64;
                let step = (i / 2) as u64;
                (sid, sid * (1 << 20) + step * 8)
            })
            .collect()
    }

    #[test]
    fn interleaved_unit_streams_classify_as_unit() {
        let refs = interleaved_unit_streams(1000);
        let mut per_stream = StreamTableDetector::new();
        per_stream.observe_all(&refs);
        // All but the two stream-opening references are unit stride.
        assert_eq!(per_stream.bins().stride1, 998);
        assert_eq!(per_stream.bins().random, 2);
        assert_eq!(per_stream.stream_count(), 2);

        // The global detector, by contrast, sees the interleave as jumps.
        let mut global = StrideDetector::new();
        for &(_, addr) in &refs {
            global.observe(addr);
        }
        assert!(
            global.bins().random > 900,
            "global detector mis-bins interleaves: {:?}",
            global.bins()
        );
    }

    #[test]
    fn single_stream_matches_global_detector() {
        let mut rng = SeededRng::new(11);
        let addrs: Vec<u64> = (0..500).map(|_| rng.next_below(1 << 16) * 8).collect();
        let mut table = StreamTableDetector::new();
        let mut global = StrideDetector::new();
        for &a in &addrs {
            table.observe(7, a);
            global.observe(a);
        }
        assert_eq!(table.bins(), global.bins());
    }

    #[test]
    fn streams_are_independent() {
        let mut d = StreamTableDetector::new();
        // Stream 1 walks unit stride; stream 2 walks stride-4; their
        // interleaving must not contaminate each other.
        for i in 0..100u64 {
            d.observe(1, i * 8);
            d.observe(2, 1 << 30 | (i * 32));
        }
        let bins = d.bins();
        assert_eq!(bins.stride1, 99);
        assert_eq!(bins.short, 99);
        assert_eq!(bins.random, 2);
    }

    #[test]
    fn reset_clears_everything() {
        let mut d = StreamTableDetector::new();
        d.observe(1, 0);
        d.observe(1, 8);
        d.reset();
        assert_eq!(d.bins().total(), 0);
        assert_eq!(d.stream_count(), 0);
        assert_eq!(d.observe(1, 16), StrideClass::Random);
    }

    #[test]
    fn conservation_across_streams() {
        let mut rng = SeededRng::new(12);
        let refs: Vec<(u64, u64)> = (0..2000)
            .map(|_| (rng.next_below(16), rng.next_below(1 << 20)))
            .collect();
        let mut d = StreamTableDetector::new();
        d.observe_all(&refs);
        assert_eq!(d.bins().total(), 2000);
        assert!(d.stream_count() <= 16);
    }
}
