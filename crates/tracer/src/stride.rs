//! The stride detector: classify memory references as stride-1, short
//! non-unit stride (2–8 elements), or random.
//!
//! This mirrors the EMPS-style detector MetaSim Tracer uses (§3, citing
//! Hollingsworth et al.): references are classified by the delta between
//! consecutive addresses of the same reference stream. Deltas of exactly one
//! element are stride-1; deltas up to eight elements are "short"; anything
//! else (including negative jumps and large skips) is random.

use serde::{Deserialize, Serialize};

use crate::block::StrideBins;

/// Element size assumed by the detector (double precision).
pub const ELEMENT_BYTES: u64 = 8;

/// Largest short stride, in elements (the paper's "up to stride-8").
pub const MAX_SHORT_STRIDE: u64 = 8;

/// Classification of a single reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StrideClass {
    /// Consecutive elements.
    Unit,
    /// Constant short stride of 2–8 elements.
    Short,
    /// No detectable short-stride pattern.
    Random,
}

/// Streaming stride detector.
///
/// Feed it addresses in program order; it classifies each reference after
/// the first against its predecessor and accumulates [`StrideBins`].
#[derive(Debug, Clone, Default)]
pub struct StrideDetector {
    last: Option<u64>,
    bins: StrideBins,
}

impl StrideDetector {
    /// Fresh detector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Classify the delta between two consecutive addresses.
    #[must_use]
    pub fn classify_delta(prev: u64, next: u64) -> StrideClass {
        let delta = next.wrapping_sub(prev);
        if delta == ELEMENT_BYTES {
            StrideClass::Unit
        } else if delta.is_multiple_of(ELEMENT_BYTES)
            && (2 * ELEMENT_BYTES..=MAX_SHORT_STRIDE * ELEMENT_BYTES).contains(&delta)
        {
            StrideClass::Short
        } else {
            StrideClass::Random
        }
    }

    /// Observe one address; returns the classification of this reference
    /// (the first reference of a stream counts as random — there is no
    /// established stride yet).
    pub fn observe(&mut self, addr: u64) -> StrideClass {
        let class = match self.last {
            None => StrideClass::Random,
            Some(prev) => Self::classify_delta(prev, addr),
        };
        match class {
            StrideClass::Unit => self.bins.stride1 += 1,
            StrideClass::Short => self.bins.short += 1,
            StrideClass::Random => self.bins.random += 1,
        }
        self.last = Some(addr);
        class
    }

    /// Observe a whole slice of addresses.
    pub fn observe_all(&mut self, addrs: &[u64]) {
        for &a in addrs {
            self.observe(a);
        }
    }

    /// The accumulated bins.
    #[must_use]
    pub fn bins(&self) -> StrideBins {
        self.bins
    }

    /// Reset stream state and bins.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Estimate the working set of an address sample: distinct cache lines
/// touched × line size. Matches how address-stream tracers size loops for
/// MAPS lookup.
#[must_use]
pub fn estimate_working_set(addrs: &[u64], line_bytes: u64) -> u64 {
    debug_assert!(line_bytes.is_power_of_two());
    let shift = line_bytes.trailing_zeros();
    let mut lines: Vec<u64> = addrs.iter().map(|&a| a >> shift).collect();
    lines.sort_unstable();
    lines.dedup();
    lines.len() as u64 * line_bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_stride_stream_is_almost_all_stride1() {
        let mut d = StrideDetector::new();
        let addrs: Vec<u64> = (0..1000u64).map(|i| i * 8).collect();
        d.observe_all(&addrs);
        let bins = d.bins();
        assert_eq!(bins.stride1, 999);
        assert_eq!(bins.random, 1, "first reference has no stride yet");
        assert_eq!(bins.short, 0);
    }

    #[test]
    fn short_strides_are_detected_up_to_eight() {
        for stride in 2..=8u64 {
            let mut d = StrideDetector::new();
            let addrs: Vec<u64> = (0..100u64).map(|i| i * stride * 8).collect();
            d.observe_all(&addrs);
            assert_eq!(d.bins().short, 99, "stride {stride}");
        }
    }

    #[test]
    fn stride_nine_is_random() {
        let mut d = StrideDetector::new();
        let addrs: Vec<u64> = (0..100u64).map(|i| i * 9 * 8).collect();
        d.observe_all(&addrs);
        assert_eq!(d.bins().random, 100);
    }

    #[test]
    fn backwards_and_unaligned_deltas_are_random() {
        assert_eq!(
            StrideDetector::classify_delta(800, 792),
            StrideClass::Random
        );
        assert_eq!(StrideDetector::classify_delta(0, 12), StrideClass::Random);
        assert_eq!(
            StrideDetector::classify_delta(100, 100),
            StrideClass::Random
        );
    }

    #[test]
    fn boundary_classifications() {
        assert_eq!(StrideDetector::classify_delta(0, 8), StrideClass::Unit);
        assert_eq!(StrideDetector::classify_delta(0, 16), StrideClass::Short);
        assert_eq!(StrideDetector::classify_delta(0, 64), StrideClass::Short);
        assert_eq!(StrideDetector::classify_delta(0, 72), StrideClass::Random);
    }

    #[test]
    fn mixed_stream_bins_proportionally() {
        let mut d = StrideDetector::new();
        // 3 unit steps then a jump, repeated.
        let mut addr = 0u64;
        for i in 0..400u64 {
            d.observe(addr);
            addr = if i % 4 == 3 { addr + 10_000 } else { addr + 8 };
        }
        let bins = d.bins();
        assert_eq!(bins.total(), 400);
        assert_eq!(bins.stride1, 300);
        assert_eq!(bins.random, 100);
    }

    #[test]
    fn reset_clears_state() {
        let mut d = StrideDetector::new();
        d.observe(0);
        d.observe(8);
        d.reset();
        assert_eq!(d.bins().total(), 0);
        assert_eq!(d.observe(16), StrideClass::Random, "stream restarts");
    }

    #[test]
    fn working_set_estimate_counts_lines() {
        // 16 addresses in 2 lines of 64 B.
        let addrs: Vec<u64> = (0..16u64).map(|i| i * 8).collect();
        assert_eq!(estimate_working_set(&addrs, 64), 128);
        // Repeats don't inflate.
        let repeated: Vec<u64> = addrs.iter().chain(addrs.iter()).copied().collect();
        assert_eq!(estimate_working_set(&repeated, 64), 128);
        assert_eq!(estimate_working_set(&[], 64), 0);
    }
}
