//! The complete application trace: blocks plus communication.

use metasim_audit::registry::MS201;
use metasim_audit::{audit_value, AuditReport, Auditor};
use serde::{Deserialize, Serialize};

use crate::block::{StrideBins, TracedBlock};
use crate::mpi::MpiTrace;

/// Everything tracing one (application, process-count) run on the base
/// system produces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApplicationTrace {
    /// Application name (e.g. `"AVUS"`).
    pub app: String,
    /// Test case (e.g. `"standard"`).
    pub case: String,
    /// Processes in the traced run.
    pub processes: u64,
    /// Per-process basic-block census.
    pub blocks: Vec<TracedBlock>,
    /// Per-process communication census.
    pub mpi: MpiTrace,
}

impl ApplicationTrace {
    /// Total floating-point operations per process.
    #[must_use]
    pub fn total_flops(&self) -> u64 {
        self.blocks.iter().map(TracedBlock::total_flops).sum()
    }

    /// Total memory references per process.
    #[must_use]
    pub fn total_mem_refs(&self) -> u64 {
        self.blocks.iter().map(TracedBlock::total_mem_refs).sum()
    }

    /// Stride bins aggregated over all blocks, weighted by invocations.
    #[must_use]
    pub fn aggregate_bins(&self) -> StrideBins {
        self.blocks
            .iter()
            .map(|b| b.bins.scaled(b.invocations))
            .fold(StrideBins::default(), |acc, b| acc.merged(&b))
    }

    /// Flops per memory reference — the classic balance metric.
    #[must_use]
    pub fn flops_per_ref(&self) -> f64 {
        let refs = self.total_mem_refs();
        if refs == 0 {
            return f64::INFINITY;
        }
        self.total_flops() as f64 / refs as f64
    }

    /// Emit [`MS201`] trace-shape diagnostics plus every block's
    /// [`metasim_audit::registry::MS202`] findings, scoped by block name.
    pub fn audit(&self, a: &mut Auditor) {
        if self.blocks.is_empty() {
            a.finding_at(
                &MS201,
                "blocks",
                format!("{}/{}: no blocks traced", self.app, self.case),
            );
        }
        if self.processes == 0 {
            a.finding_at(&MS201, "processes", "traced process count must be nonzero");
        }
        if self.mpi.processes != self.processes {
            a.finding_at(
                &MS201,
                "mpi.processes",
                format!(
                    "{}/{}: MPI trace processes {} != {}",
                    self.app, self.case, self.mpi.processes, self.processes
                ),
            );
        }
        for (i, b) in self.blocks.iter().enumerate() {
            a.scope(format!("blocks[{i}]"), |a| b.audit(a));
        }
    }

    /// Validate every block and the trace shape.
    ///
    /// # Errors
    /// The audit report, when any error-severity finding fires.
    pub fn validate(&self) -> Result<(), AuditReport> {
        audit_value(|a| self.audit(a)).into_result().map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::DependencyClass;

    fn sample() -> ApplicationTrace {
        ApplicationTrace {
            app: "TEST".into(),
            case: "standard".into(),
            processes: 8,
            blocks: vec![
                TracedBlock {
                    name: "a".into(),
                    flops: 100,
                    bins: StrideBins {
                        stride1: 50,
                        short: 0,
                        random: 10,
                    },
                    working_set: 4096,
                    dependency: DependencyClass::Independent,
                    invocations: 2,
                },
                TracedBlock {
                    name: "b".into(),
                    flops: 10,
                    bins: StrideBins {
                        stride1: 5,
                        short: 5,
                        random: 0,
                    },
                    working_set: 4096,
                    dependency: DependencyClass::Chained,
                    invocations: 10,
                },
            ],
            mpi: MpiTrace::empty(8),
        }
    }

    #[test]
    fn totals_weight_invocations() {
        let t = sample();
        assert_eq!(t.total_flops(), 200 + 100);
        assert_eq!(t.total_mem_refs(), 120 + 100);
        let agg = t.aggregate_bins();
        assert_eq!(agg.stride1, 100 + 50);
        assert_eq!(agg.short, 50);
        assert_eq!(agg.random, 20);
    }

    #[test]
    fn flop_balance() {
        let t = sample();
        let expect = 300.0 / 220.0;
        assert!((t.flops_per_ref() - expect).abs() < 1e-12);
    }

    #[test]
    fn validation_checks_shape() {
        let mut t = sample();
        t.validate().unwrap();
        t.mpi.processes = 4;
        let report = t.validate().unwrap_err();
        assert!(report.has_code("MS201"), "{report}");
        assert_eq!(report.diagnostics[0].subject, "mpi.processes");

        let mut t = sample();
        t.blocks.clear();
        assert!(t.validate().unwrap_err().has_code("MS201"));

        let mut t = sample();
        t.processes = 0;
        assert!(t.validate().unwrap_err().has_code("MS201"));

        // Block-level findings surface through the trace audit, scoped.
        let mut t = sample();
        t.blocks[1].invocations = 0;
        let report = t.validate().unwrap_err();
        assert!(report.has_code("MS202"), "{report}");
        assert_eq!(report.diagnostics[0].subject, "blocks[1].invocations");
    }

    #[test]
    fn flops_per_ref_of_pure_compute_is_infinite() {
        let mut t = sample();
        for b in &mut t.blocks {
            b.bins = StrideBins::default();
        }
        assert!(t.flops_per_ref().is_infinite());
    }
}
