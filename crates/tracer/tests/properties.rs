//! Property-based tests for the tracer.

use metasim_stats::rng::SeededRng;
use metasim_tracer::block::{DependencyClass, StrideBins, TracedBlock};
use metasim_tracer::stride::{estimate_working_set, StrideDetector};
use proptest::prelude::*;

proptest! {
    // Every reference lands in exactly one bin.
    #[test]
    fn bins_conserve_references(seed in 0u64..2000, n in 1usize..2000) {
        let mut rng = SeededRng::new(seed);
        let addrs: Vec<u64> = (0..n).map(|_| rng.next_below(1 << 20) * 8).collect();
        let mut d = StrideDetector::new();
        d.observe_all(&addrs);
        prop_assert_eq!(d.bins().total(), n as u64);
    }

    // A pure constant-stride stream (no wrap) classifies uniformly after
    // the first reference.
    #[test]
    fn constant_stride_classifies_uniformly(stride in 1u64..32, n in 2usize..500) {
        let addrs: Vec<u64> = (0..n as u64).map(|i| i * stride * 8).collect();
        let mut d = StrideDetector::new();
        d.observe_all(&addrs);
        let bins = d.bins();
        // The first reference of any stream is binned random (no stride is
        // established yet), so large-stride streams are all-random.
        let expect = (n - 1) as u64;
        match stride {
            1 => prop_assert_eq!(bins.stride1, expect),
            2..=8 => prop_assert_eq!(bins.short, expect),
            _ => prop_assert_eq!(bins.random, n as u64),
        }
    }

    // Detection is insensitive to a constant base offset.
    #[test]
    fn detection_is_translation_invariant(seed in 0u64..1000, base in 0u64..1<<40) {
        let mut rng = SeededRng::new(seed);
        let addrs: Vec<u64> = (0..500).map(|_| rng.next_below(1 << 16) * 8).collect();
        let shifted: Vec<u64> = addrs.iter().map(|a| a + base).collect();
        let mut d1 = StrideDetector::new();
        d1.observe_all(&addrs);
        let mut d2 = StrideDetector::new();
        d2.observe_all(&shifted);
        prop_assert_eq!(d1.bins(), d2.bins());
    }

    // Working-set estimates are monotone under stream extension and
    // bounded by line-rounded span.
    #[test]
    fn working_set_estimate_bounds(seed in 0u64..1000, n in 1usize..1000) {
        let mut rng = SeededRng::new(seed);
        let addrs: Vec<u64> = (0..n).map(|_| rng.next_below(1 << 18)).collect();
        let half = estimate_working_set(&addrs[..n / 2], 64);
        let full = estimate_working_set(&addrs, 64);
        prop_assert!(full >= half);
        prop_assert!(full <= (n as u64) * 64, "at most one line per ref");
        prop_assert_eq!(full % 64, 0);
    }

    // Bin arithmetic: merged totals add, scaling multiplies.
    #[test]
    fn bin_arithmetic(a in 0u64..1000, b in 0u64..1000, c in 0u64..1000, k in 1u64..100) {
        let bins = StrideBins { stride1: a, short: b, random: c };
        let doubled = bins.merged(&bins);
        prop_assert_eq!(doubled.total(), 2 * bins.total());
        prop_assert_eq!(bins.scaled(k).total(), k * bins.total());
        let fsum = bins.stride1_fraction() + bins.short_fraction() + bins.random_fraction();
        if bins.total() > 0 {
            prop_assert!((fsum - 1.0).abs() < 1e-9);
        }
    }

    // Static analysis never invents a dependency that isn't there.
    #[test]
    fn analyzer_never_invents_dependencies(flops in 0u64..100_000, refs in 1u64..100_000) {
        let block = TracedBlock {
            name: "b".into(),
            flops,
            bins: StrideBins { stride1: refs, short: 0, random: 0 },
            working_set: 4096,
            dependency: DependencyClass::Independent,
            invocations: 1,
        };
        let verdict = metasim_tracer::analysis::analyze_block(&block);
        prop_assert_eq!(verdict.detected, DependencyClass::Independent);
        prop_assert!(verdict.exact);
    }
}
