//! Units of measure for the `metasim` workspace.
//!
//! The SC'05 study this workspace reproduces is a pile of rate arithmetic:
//! Equation 1 scales a base runtime by a ratio of benchmark scores (GFLOP/s,
//! GB/s, updates/s), the convolution metrics divide traced operation counts
//! by probe-measured rates, and Equation 2 folds 1,350 signed percent
//! errors. With every quantity a bare `f64`, a seconds-for-hertz or
//! GB-for-GiB slip compiles, runs, and silently corrupts Table 4.
//!
//! This crate makes such slips *compile errors*: [`Quantity<D>`] is a
//! zero-cost `f64` newtype carrying a dimension phantom, and the only
//! `Mul`/`Div` impls provided are the dimensionally legal ones —
//! `Bytes / BytesPerSec = Seconds`, `FlopsPerSec * Seconds = Flops`,
//! same-dimension division yields a [`Ratio`], and so on. There is no
//! blanket "multiply anything" escape hatch; crossing dimensions requires
//! an explicit named conversion (e.g. [`Gflops::flops_per_sec`]).
//!
//! Two invariants keep the rest of the workspace byte-identical to its
//! untyped history:
//!
//! * The wrapped value is stored exactly as the old code stored it (same
//!   scale, same IEEE bits); every arithmetic impl performs the same single
//!   `f64` operation the open-coded expression performed.
//! * `Display`/`Debug` forward to `f64`, so formatted output (CSV exports,
//!   table cells, log lines) is unchanged, and serde round-trips through
//!   the same `f64` value representation.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::marker::PhantomData;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

use serde::{DeError, Deserialize, Serialize, Value};

/// A dimension marker: a zero-sized type naming what a [`Quantity`]
/// measures. The `LABEL` shows up in `Debug`-style diagnostics only.
pub trait Dimension: Copy + Clone + PartialEq + fmt::Debug + Default + 'static {
    /// Human-readable unit label, e.g. `"s"` or `"B/s"`.
    const LABEL: &'static str;
}

macro_rules! dimensions {
    ($($(#[$doc:meta])* $marker:ident => $label:literal, $alias:ident;)*) => {$(
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
        pub struct $marker;
        impl Dimension for $marker {
            const LABEL: &'static str = $label;
        }
        $(#[$doc])*
        pub type $alias = Quantity<$marker>;
    )*};
}

dimensions! {
    /// Wall-clock or modelled time in seconds.
    SecondsDim => "s", Seconds;
    /// A byte count (payloads, working sets as continuous quantities).
    BytesDim => "B", Bytes;
    /// A floating-point operation count.
    FlopsDim => "flop", Flops;
    /// A random-access update count (GUPS table updates).
    UpdatesDim => "up", Updates;
    /// A floating-point rate in FLOP/s.
    FlopsPerSecDim => "flop/s", FlopsPerSec;
    /// A memory/network bandwidth in bytes/s.
    BytesPerSecDim => "B/s", BytesPerSec;
    /// A random-access rate in updates/s.
    UpdatesPerSecDim => "up/s", UpdatesPerSec;
    /// A floating-point rate at the GFLOP/s scale (how HPL results are
    /// quoted). Deliberately distinct from [`FlopsPerSec`]: converting
    /// requires the explicit [`Gflops::flops_per_sec`] call, so a stray
    /// `1e9` can never be silently dropped or doubled.
    GflopsDim => "Gflop/s", Gflops;
}

/// An `f64` tagged with the dimension it measures.
///
/// Construction ([`Quantity::new`]) and extraction ([`Quantity::get`]) are
/// explicit; arithmetic between quantities is restricted to the legal
/// dimension algebra implemented below.
#[derive(Clone, Copy, Default)]
pub struct Quantity<D: Dimension>(f64, PhantomData<D>);

impl<D: Dimension> Quantity<D> {
    /// Wrap a raw value already expressed in this dimension's unit.
    #[must_use]
    pub const fn new(value: f64) -> Self {
        Self(value, PhantomData)
    }

    /// The raw value. This is the *only* way back to `f64`; call sites
    /// using it mark exactly where the typed world ends.
    #[must_use]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// Absolute value, same dimension.
    #[must_use]
    pub fn abs(self) -> Self {
        Self::new(self.0.abs())
    }

    /// Is the wrapped value finite?
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Elementwise max (mirrors `f64::max`, used for overlap models).
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        Self::new(self.0.max(other.0))
    }

    /// Elementwise min (mirrors `f64::min`).
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        Self::new(self.0.min(other.0))
    }

    /// Total ordering on the wrapped value (mirrors `f64::total_cmp`).
    #[must_use]
    pub fn total_cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Gflops {
    /// The same rate at the base FLOP/s scale (× 1e9). The only bridge
    /// between the GFLOP/s world HPL reports in and the FLOP/s world the
    /// convolver divides flop counts by.
    #[must_use]
    pub fn flops_per_sec(self) -> FlopsPerSec {
        FlopsPerSec::new(self.0 * 1e9)
    }
}

// --- formatting: forward to f64 so output stays byte-identical -----------

impl<D: Dimension> fmt::Display for Quantity<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl<D: Dimension> fmt::Debug for Quantity<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.0, f)
    }
}

impl<D: Dimension> fmt::LowerExp for Quantity<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerExp::fmt(&self.0, f)
    }
}

// --- comparisons ----------------------------------------------------------

impl<D: Dimension> PartialEq for Quantity<D> {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

impl<D: Dimension> PartialOrd for Quantity<D> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.0.partial_cmp(&other.0)
    }
}

/// Comparisons against bare `f64` are allowed (thresholds, literals in
/// tests); they read as "compare the magnitude", which is unambiguous.
impl<D: Dimension> PartialEq<f64> for Quantity<D> {
    fn eq(&self, other: &f64) -> bool {
        self.0 == *other
    }
}

impl<D: Dimension> PartialOrd<f64> for Quantity<D> {
    fn partial_cmp(&self, other: &f64) -> Option<Ordering> {
        self.0.partial_cmp(other)
    }
}

// --- serde: transparent f64 ----------------------------------------------

impl<D: Dimension> Serialize for Quantity<D> {
    fn to_value(&self) -> Value {
        self.0.to_value()
    }
}

impl<D: Dimension> Deserialize for Quantity<D> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(Self::new)
    }
}

// --- same-dimension algebra ----------------------------------------------

impl<D: Dimension> Add for Quantity<D> {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self::new(self.0 + rhs.0)
    }
}

impl<D: Dimension> Sub for Quantity<D> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.0 - rhs.0)
    }
}

impl<D: Dimension> AddAssign for Quantity<D> {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl<D: Dimension> Neg for Quantity<D> {
    type Output = Self;
    fn neg(self) -> Self {
        Self::new(-self.0)
    }
}

impl<D: Dimension> Sum for Quantity<D> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        Self::new(iter.map(Quantity::get).sum())
    }
}

/// Same-dimension division cancels the dimension: a [`Ratio`].
impl<D: Dimension> Div for Quantity<D> {
    type Output = Ratio;
    fn div(self, rhs: Self) -> Ratio {
        Ratio::new(self.0 / rhs.0)
    }
}

// --- scalar scaling -------------------------------------------------------

impl<D: Dimension> Mul<f64> for Quantity<D> {
    type Output = Self;
    fn mul(self, rhs: f64) -> Self {
        Self::new(self.0 * rhs)
    }
}

impl<D: Dimension> Mul<Quantity<D>> for f64 {
    type Output = Quantity<D>;
    fn mul(self, rhs: Quantity<D>) -> Quantity<D> {
        Quantity::new(self * rhs.0)
    }
}

impl<D: Dimension> Div<f64> for Quantity<D> {
    type Output = Self;
    fn div(self, rhs: f64) -> Self {
        Self::new(self.0 / rhs)
    }
}

// --- the rate triples: count / rate = time, etc. --------------------------

macro_rules! rate_triple {
    ($count:ident, $rate:ident) => {
        impl Div<Quantity<$rate>> for Quantity<$count> {
            type Output = Seconds;
            fn div(self, rhs: Quantity<$rate>) -> Seconds {
                Seconds::new(self.0 / rhs.0)
            }
        }
        impl Div<Seconds> for Quantity<$count> {
            type Output = Quantity<$rate>;
            fn div(self, rhs: Seconds) -> Quantity<$rate> {
                Quantity::new(self.0 / rhs.0)
            }
        }
        impl Mul<Seconds> for Quantity<$rate> {
            type Output = Quantity<$count>;
            fn mul(self, rhs: Seconds) -> Quantity<$count> {
                Quantity::new(self.0 * rhs.0)
            }
        }
        impl Mul<Quantity<$rate>> for Seconds {
            type Output = Quantity<$count>;
            fn mul(self, rhs: Quantity<$rate>) -> Quantity<$count> {
                Quantity::new(self.0 * rhs.0)
            }
        }
    };
}

rate_triple!(BytesDim, BytesPerSecDim);
rate_triple!(FlopsDim, FlopsPerSecDim);
rate_triple!(UpdatesDim, UpdatesPerSecDim);

// --- Ratio ----------------------------------------------------------------

/// A dimensionless quotient of two same-dimension quantities.
///
/// Multiplying a `Ratio` back into any [`Quantity`] preserves that
/// quantity's dimension — the algebraic heart of Equation 1:
/// `T' = (cost_target / cost_base) * T_base` is `Ratio * Seconds = Seconds`.
#[derive(Clone, Copy, Default)]
pub struct Ratio(f64);

impl Ratio {
    /// Wrap a raw dimensionless value.
    #[must_use]
    pub const fn new(value: f64) -> Self {
        Self(value)
    }

    /// The raw value.
    #[must_use]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// This ratio expressed as a [`Percent`] (× 100).
    #[must_use]
    pub fn percent(self) -> Percent {
        Percent::new(self.0 * 100.0)
    }
}

impl<D: Dimension> Mul<Quantity<D>> for Ratio {
    type Output = Quantity<D>;
    fn mul(self, rhs: Quantity<D>) -> Quantity<D> {
        Quantity::new(self.0 * rhs.0)
    }
}

impl<D: Dimension> Mul<Ratio> for Quantity<D> {
    type Output = Quantity<D>;
    fn mul(self, rhs: Ratio) -> Quantity<D> {
        Quantity::new(self.0 * rhs.0)
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl fmt::Debug for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.0, f)
    }
}

impl PartialEq for Ratio {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.0.partial_cmp(&other.0)
    }
}

impl PartialEq<f64> for Ratio {
    fn eq(&self, other: &f64) -> bool {
        self.0 == *other
    }
}

impl PartialOrd<f64> for Ratio {
    fn partial_cmp(&self, other: &f64) -> Option<Ordering> {
        self.0.partial_cmp(other)
    }
}

impl Serialize for Ratio {
    fn to_value(&self) -> Value {
        self.0.to_value()
    }
}

impl Deserialize for Ratio {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(Self::new)
    }
}

// --- Percent --------------------------------------------------------------

/// A percent error or share (Equation 2 of the paper): a dimensionless
/// value already scaled by 100.
///
/// Alongside the arithmetic the study needs (signed accumulation, absolute
/// values, comparisons), `Percent` owns the *one* set of rendering helpers
/// every table, CSV, and chart uses, so the paper's mixed one-decimal /
/// whole-number precision is decided in exactly one place.
#[derive(Clone, Copy, Default)]
pub struct Percent(f64);

impl Percent {
    /// Wrap a raw percent value (already × 100).
    #[must_use]
    pub const fn new(value: f64) -> Self {
        Self(value)
    }

    /// The raw percent value.
    #[must_use]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// Absolute value.
    #[must_use]
    pub fn abs(self) -> Self {
        Self::new(self.0.abs())
    }

    /// Is the wrapped value finite?
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Total ordering (mirrors `f64::total_cmp`).
    #[must_use]
    pub fn total_cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }

    /// The paper's error-table precision: whole number (`"63"`).
    #[must_use]
    pub fn paper(self) -> String {
        format!("{:.0}", self.0)
    }

    /// One-decimal rendering (`"62.5"`), the §4 composite-table precision.
    #[must_use]
    pub fn one_decimal(self) -> String {
        format!("{:.1}", self.0)
    }

    /// Signed one-decimal rendering (`"+4.2"` / `"-10.0"`), used where the
    /// error's direction matters.
    #[must_use]
    pub fn signed_one_decimal(self) -> String {
        format!("{:+.1}", self.0)
    }
}

impl Add for Percent {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self::new(self.0 + rhs.0)
    }
}

impl Sub for Percent {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.0 - rhs.0)
    }
}

impl Add<f64> for Percent {
    type Output = Self;
    fn add(self, rhs: f64) -> Self {
        Self::new(self.0 + rhs)
    }
}

impl Sub<f64> for Percent {
    type Output = Self;
    fn sub(self, rhs: f64) -> Self {
        Self::new(self.0 - rhs)
    }
}

impl Neg for Percent {
    type Output = Self;
    fn neg(self) -> Self {
        Self::new(-self.0)
    }
}

impl fmt::Display for Percent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl fmt::Debug for Percent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.0, f)
    }
}

impl PartialEq for Percent {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

impl PartialOrd for Percent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.0.partial_cmp(&other.0)
    }
}

impl PartialEq<f64> for Percent {
    fn eq(&self, other: &f64) -> bool {
        self.0 == *other
    }
}

impl PartialOrd<f64> for Percent {
    fn partial_cmp(&self, other: &f64) -> Option<Ordering> {
        self.0.partial_cmp(other)
    }
}

impl Serialize for Percent {
    fn to_value(&self) -> Value {
        self.0.to_value()
    }
}

impl Deserialize for Percent {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(Self::new)
    }
}

impl From<Percent> for f64 {
    fn from(p: Percent) -> f64 {
        p.0
    }
}

impl From<Ratio> for f64 {
    fn from(r: Ratio) -> f64 {
        r.0
    }
}

impl<D: Dimension> From<Quantity<D>> for f64 {
    fn from(q: Quantity<D>) -> f64 {
        q.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_triples_close_the_algebra() {
        let n = Bytes::new(1024.0);
        let bw = BytesPerSec::new(512.0);
        let t: Seconds = n / bw;
        assert_eq!(t, 2.0);
        let back: Bytes = bw * t;
        assert_eq!(back, 1024.0);
        let rate: BytesPerSec = n / t;
        assert_eq!(rate, 512.0);

        let f = Flops::new(6e9);
        let fr = FlopsPerSec::new(3e9);
        assert_eq!(f / fr, Seconds::new(2.0));

        let u = Updates::new(100.0);
        let ur = UpdatesPerSec::new(50.0);
        assert_eq!(u / ur, Seconds::new(2.0));
    }

    #[test]
    fn same_dimension_division_is_a_ratio() {
        let r: Ratio = Seconds::new(50.0) / Seconds::new(100.0);
        assert_eq!(r.get(), 0.5);
        // Equation 1: Ratio * Seconds = Seconds.
        let t: Seconds = r * Seconds::new(1000.0);
        assert_eq!(t, 500.0);
        assert_eq!(r.percent().get(), 50.0);
    }

    #[test]
    fn gflops_bridge_is_explicit_and_exact() {
        let g = Gflops::new(1.3);
        assert_eq!(g.flops_per_sec().get(), 1.3 * 1e9);
        // Division of same-scale rates works without the bridge.
        let eff: Ratio = Gflops::new(1.0) / Gflops::new(2.0);
        assert_eq!(eff.get(), 0.5);
    }

    #[test]
    fn arithmetic_matches_raw_f64_bitwise() {
        // The newtype must not perturb a single bit of the old arithmetic.
        let (a, b, c) = (0.1_f64, 0.7_f64, 3.3_f64);
        let typed = (Bytes::new(a) / BytesPerSec::new(b) + Seconds::new(c)).get();
        let raw = a / b + c;
        assert_eq!(typed.to_bits(), raw.to_bits());
        let typed2 = (Seconds::new(a).max(Seconds::new(b)) * c).get();
        assert_eq!(typed2.to_bits(), (a.max(b) * c).to_bits());
    }

    #[test]
    fn display_and_debug_forward_to_f64() {
        let t = Seconds::new(1234.5678);
        assert_eq!(format!("{t}"), format!("{}", 1234.5678_f64));
        assert_eq!(format!("{t:.2}"), "1234.57");
        assert_eq!(format!("{t:?}"), format!("{:?}", 1234.5678_f64));
        assert_eq!(format!("{:>9.2e}", Seconds::new(0.5)), "  5.00e-1");
    }

    #[test]
    fn percent_rendering_helpers() {
        assert_eq!(Percent::new(62.5).paper(), "62"); // round-half-even
        assert_eq!(Percent::new(63.44).one_decimal(), "63.4");
        assert_eq!(Percent::new(4.25).signed_one_decimal(), "+4.2");
        assert_eq!(Percent::new(-10.0).signed_one_decimal(), "-10.0");
        assert_eq!((Percent::new(5.0) - Percent::new(7.5)).get(), -2.5);
        assert!(Percent::new(-3.0).abs() > 2.9);
    }

    #[test]
    fn f64_comparisons_work_both_for_quantities_and_percent() {
        assert!(Seconds::new(3.0) > 2.5);
        assert!(BytesPerSec::new(1e9) < 2e9);
        assert!(Percent::new(18.0) < 30.0);
        assert!(Ratio::new(0.9) < 1.0);
        assert_eq!(Seconds::new(2.0), 2.0);
    }

    #[test]
    fn serde_round_trip_is_value_transparent() {
        let t = Seconds::new(1234.5678);
        assert_eq!(t.to_value(), 1234.5678_f64.to_value());
        let back = Seconds::from_value(&t.to_value()).unwrap();
        assert_eq!(back.get().to_bits(), t.get().to_bits());
        // Integral JSON numbers deserialize like the f64 impl does.
        let from_int = Seconds::from_value(&Value::U64(7)).unwrap();
        assert_eq!(from_int, 7.0);
    }

    #[test]
    fn sum_and_iterator_support() {
        let total: Seconds = [1.0, 2.0, 3.5].into_iter().map(Seconds::new).sum();
        assert_eq!(total, 6.5);
    }

    #[test]
    fn dimension_labels_are_distinct() {
        let labels = [
            SecondsDim::LABEL,
            BytesDim::LABEL,
            FlopsDim::LABEL,
            UpdatesDim::LABEL,
            FlopsPerSecDim::LABEL,
            BytesPerSecDim::LABEL,
            UpdatesPerSecDim::LABEL,
            GflopsDim::LABEL,
        ];
        let set: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(set.len(), labels.len());
    }
}
