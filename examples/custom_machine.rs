//! What-if procurement analysis on a machine that doesn't exist.
//!
//! Start from the ARL Opteron, pitch three hypothetical upgrades — faster
//! clock, faster memory, faster interconnect — and predict the TI-05 suite
//! on each using Metric #9, without "running" anything on the candidates.
//! This is the forward-looking use of the methodology the paper's
//! conclusion gestures at.
//!
//! Run with: `cargo run --release --example custom_machine`

use metasim::apps::groundtruth::GroundTruth;
use metasim::apps::registry::TestCase;
use metasim::apps::tracing::trace_workload;
use metasim::core::metric::MetricId;
use metasim::core::prediction::predict_one;
use metasim::machines::{fleet, MachineBuilder, MachineConfig, MachineId};
use metasim::probes::suite::MachineProbes;
use metasim::tracer::analysis::analyze_dependencies;
use metasim::units::Seconds;

fn suite_prediction(candidate: &MachineConfig, fleet: &metasim::machines::Fleet) -> Seconds {
    let gt = GroundTruth::new();
    let candidate_probes = MachineProbes::measure(candidate);
    let base_probes = MachineProbes::measure(fleet.base());
    TestCase::ALL
        .iter()
        .map(|&case| {
            let cpus = case.cpu_counts()[1];
            let workload = case.workload(cpus);
            let trace = trace_workload(&workload);
            let labels = analyze_dependencies(&trace.blocks);
            let t_base = Seconds::new(gt.run(case, cpus, fleet.base()).seconds);
            predict_one(
                MetricId::P9HplMapsNetDep,
                &trace,
                &labels,
                &candidate_probes,
                &base_probes,
                t_base,
            )
        })
        .sum()
}

fn main() {
    let fleet = fleet();
    let stock = fleet.get(MachineId::ArlOpteron).clone();

    let candidates: Vec<(&str, MachineConfig)> = vec![
        ("stock Opteron 2.2 GHz", stock.clone()),
        (
            "clock +30%",
            MachineBuilder::from(stock.clone())
                .scale_clock(1.3)
                .build()
                .expect("valid clock upgrade"),
        ),
        (
            "memory +30% BW, -20% latency",
            MachineBuilder::from(stock.clone())
                .scale_memory_bandwidth(1.3)
                .scale_memory_latency(0.8)
                .build()
                .expect("valid memory upgrade"),
        ),
        (
            "interconnect latency halved",
            MachineBuilder::from(stock.clone())
                .scale_network_latency(0.5)
                .build()
                .expect("valid network upgrade"),
        ),
    ];

    println!("Predicted TI-05 suite time (Metric #9, mid CPU counts):\n");
    let baseline = suite_prediction(&candidates[0].1, &fleet);
    for (name, machine) in &candidates {
        let t = suite_prediction(machine, &fleet);
        println!(
            "  {:<32} {:>8.0} s  ({:+.1}% vs stock)",
            name,
            t,
            ((t - baseline) / baseline).percent()
        );
    }
    println!(
        "\nThe memory upgrade dominates — exactly what the paper's finding that\n\
         these workloads are memory-bound (and not communication-bound) implies."
    );
}
