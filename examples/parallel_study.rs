//! Parallel study: shard the cold 150-observation grid across a worker
//! pool and prove the output never moves a bit.
//!
//! This is the API behind `metasim study --jobs N`:
//!   1. lint the study plan — MS701–MS705 certify the shard cut is safe,
//!   2. run the study sharded across 4 workers,
//!   3. run it serially and compare the serialized artifacts byte-for-byte,
//!   4. show the shard layout the obs recorder captured.
//!
//! Run with: `cargo run --release --example parallel_study`

use std::sync::Arc;

use metasim::apps::groundtruth::GroundTruth;
use metasim::audit::AuditPolicy;
use metasim::core::dataflow::DataflowModel;
use metasim::core::lint::{lint_all_with_policy, LintModel};
use metasim::core::study::Study;
use metasim::machines::fleet;
use metasim::obs::{with_recorder, InMemoryRecorder};
use metasim::probes::suite::ProbeSuite;

fn main() {
    // 1. The static certificate: the dataflow graph says the 150
    //    prediction cells are independent, seed streams are disjoint, and
    //    every shared memo is guarded. If this reports anything, sharding
    //    would not be safe.
    let report = lint_all_with_policy(
        &LintModel::shipped(),
        &DataflowModel::shipped(),
        AuditPolicy::default(),
    );
    let graph = DataflowModel::shipped().graph;
    println!(
        "lint: {} findings over {} nodes / {} edges ({} independent prediction cells)",
        report.diagnostics.len(),
        graph.nodes.len(),
        graph.edges.len(),
        graph.shard_cut().len(),
    );
    assert!(report.is_clean(), "the shipped plan must certify");

    // 2. The sharded run, with a recorder attached so we can see the
    //    shard spans afterwards.
    let f = fleet();
    let suite = ProbeSuite::new();
    let gt = GroundTruth::new();
    let rec = Arc::new(InMemoryRecorder::new());
    let (parallel, timings) =
        with_recorder(rec.clone(), || Study::run_timed_jobs(&f, &suite, &gt, 4));
    println!(
        "sharded run (--jobs 4): {} observations in {:.1} s",
        parallel.observations.len(),
        timings.total_seconds
    );

    // 3. The serial reference (a process-wide memo, so later examples and
    //    tests share it) — byte-identical, not just approximately equal.
    let serial = Study::run_default();
    assert_eq!(
        serde_json::to_string(&parallel).expect("serialize"),
        serde_json::to_string(serial).expect("serialize"),
        "sharding must not move a single output bit"
    );
    println!("serial reference: byte-identical artifact");

    // 4. The shard layout, straight from the span log.
    let spans = rec.span_records();
    for phase in spans.iter().filter(|s| s.name.starts_with("phase:")) {
        let shards = spans
            .iter()
            .filter(|s| s.parent == phase.id && s.name.starts_with("shard:"))
            .count();
        println!("  {}: {} shard spans", phase.name, shards);
    }
}
