//! Procurement ranking: order the fleet for a target workload, the use case
//! the paper's introduction motivates ("system X is 50% faster than system Y
//! for application Z").
//!
//! Ranks all ten target systems for the full TI-05 suite three ways — by
//! HPL, by GUPS, and by Metric #9 predictions — and scores each ranking
//! against the true (ground-truth) ordering with Kendall's τ.
//!
//! Run with: `cargo run --release --example procurement_ranking`

use metasim::apps::groundtruth::GroundTruth;
use metasim::apps::registry::TestCase;
use metasim::apps::tracing::trace_workload;
use metasim::core::metric::MetricId;
use metasim::core::prediction::predict_one;
use metasim::machines::{fleet, MachineId};
use metasim::probes::suite::ProbeSuite;
use metasim::stats::correlation::kendall_tau;
use metasim::tracer::analysis::analyze_dependencies;
use metasim::units::Seconds;

fn main() {
    let fleet = fleet();
    let suite = ProbeSuite::new();
    let gt = GroundTruth::new();

    // Aggregate workload: total suite time at each case's middle CPU count.
    let cases: Vec<(TestCase, u64)> = TestCase::ALL
        .iter()
        .map(|&c| (c, c.cpu_counts()[1]))
        .collect();

    let mut true_time = Vec::new();
    let mut hpl_time = Vec::new();
    let mut gups_time = Vec::new();
    let mut m9_time = Vec::new();

    let base_probes = suite.measure(fleet.base());
    for &id in &MachineId::TARGETS {
        let target_probes = suite.measure(fleet.get(id));
        let mut truth = 0.0;
        let mut m9 = 0.0;
        for &(case, cpus) in &cases {
            truth += gt.run(case, cpus, fleet.get(id)).seconds;
            let workload = case.workload(cpus);
            let trace = trace_workload(&workload);
            let labels = analyze_dependencies(&trace.blocks);
            let t_base = Seconds::new(gt.run(case, cpus, fleet.base()).seconds);
            m9 += predict_one(
                MetricId::P9HplMapsNetDep,
                &trace,
                &labels,
                &target_probes,
                &base_probes,
                t_base,
            )
            .get();
        }
        true_time.push(truth);
        // Simple-metric "rankings": suite time scales inversely with rate.
        hpl_time.push(1.0 / target_probes.hpl.rmax_gflops_per_proc.get());
        gups_time.push(1.0 / target_probes.gups.gups());
        m9_time.push(m9);
    }

    let order = |times: &[f64]| -> Vec<MachineId> {
        let mut idx: Vec<usize> = (0..times.len()).collect();
        idx.sort_by(|&a, &b| times[a].partial_cmp(&times[b]).unwrap());
        idx.into_iter().map(|i| MachineId::TARGETS[i]).collect()
    };

    println!("True suite-time ranking (fastest first):");
    for (rank, id) in order(&true_time).iter().enumerate() {
        let t = true_time[MachineId::TARGETS.iter().position(|m| m == id).unwrap()];
        println!("  {:>2}. {:<14} {:>8.0} s", rank + 1, id.label(), t);
    }

    for (name, times) in [
        ("HPL", &hpl_time),
        ("GUPS", &gups_time),
        ("Metric #9", &m9_time),
    ] {
        let tau = kendall_tau(times, &true_time).expect("well-formed ranking data");
        println!("\nRanking by {name} (Kendall tau vs truth: {tau:+.3}):");
        for (rank, id) in order(times).iter().enumerate() {
            println!("  {:>2}. {}", rank + 1, id.label());
        }
    }
    println!(
        "\nAs in the paper: single simple metrics mis-rank; the transfer-function\n\
         prediction recovers the true procurement order almost exactly."
    );
}
