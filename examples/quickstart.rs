//! Quickstart: trace an application once, predict a target machine.
//!
//! This walks the paper's whole methodology in one page:
//!   1. "run" (simulate) the application on the base system to get T(X₀),
//!   2. trace it with the MetaSim-equivalent tracer,
//!   3. measure the target machine with the synthetic probes,
//!   4. convolve trace × rates for all nine metrics,
//!   5. compare against the target's "real" (ground-truth) runtime.
//!
//! Run with: `cargo run --release --example quickstart`

use metasim::apps::groundtruth::GroundTruth;
use metasim::apps::registry::TestCase;
use metasim::apps::tracing::trace_workload;
use metasim::core::metric::MetricId;
use metasim::core::prediction::predict_all;
use metasim::machines::{fleet, MachineId};
use metasim::probes::suite::ProbeSuite;
use metasim::tracer::analysis::analyze_dependencies;
use metasim::units::Seconds;

fn main() {
    let fleet = fleet();
    let suite = ProbeSuite::new();
    let gt = GroundTruth::new();

    let case = TestCase::AvusStandard;
    let cpus = 64;
    let target = MachineId::ArlAltix;

    // 1. The base-system run (the one measurement the methodology needs).
    let t_base = Seconds::new(gt.run(case, cpus, fleet.base()).seconds);
    println!(
        "{} @ {cpus} CPUs ran {:.0} s on the base system ({}).",
        case.label(),
        t_base,
        fleet.base().id
    );

    // 2. Trace once on the base system (30x dilation in real life — see
    //    metasim::tracer::dilation).
    let workload = case.workload(cpus);
    let trace = trace_workload(&workload);
    let labels = analyze_dependencies(&trace.blocks);
    let bins = trace.aggregate_bins();
    println!(
        "traced {} blocks: {:.0}% stride-1, {:.0}% short, {:.0}% random references\n",
        trace.blocks.len(),
        bins.stride1_fraction() * 100.0,
        bins.short_fraction() * 100.0,
        bins.random_fraction() * 100.0,
    );

    // 3. Probe the target machine (no application run needed there).
    let target_probes = suite.measure(fleet.get(target));
    let base_probes = suite.measure(fleet.base());
    println!(
        "{target}: Rmax {:.2} GF/s, STREAM {:.2} GB/s, GUPS {:.4}",
        target_probes.hpl.rmax_gflops_per_proc,
        target_probes.stream.gb_per_second(),
        target_probes.gups.gups(),
    );

    // 4. Convolve: all nine predictions.
    let predictions = predict_all(&trace, &labels, &target_probes, &base_probes, t_base);

    // 5. Compare with the ground truth.
    let actual = Seconds::new(gt.run(case, cpus, fleet.get(target)).seconds);
    println!("\nactual runtime on {target}: {actual:.0} s\n");
    println!("{:<24} {:>12} {:>9}", "metric", "predicted s", "error %");
    for (metric, pred) in MetricId::ALL.iter().zip(predictions) {
        println!(
            "{:<24} {:>12.0} {:>+8.1}%",
            metric.to_string(),
            pred,
            ((pred - actual) / actual).percent()
        );
    }
    println!(
        "\nThe convolution metrics (#6-#9) use the traced operation mix; the\n\
         simple metrics scale the base runtime by one benchmark ratio (Eq. 1)."
    );
}
