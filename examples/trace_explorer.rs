//! Trace explorer: look inside what the MetaSim-equivalent tracer collects,
//! and what it costs.
//!
//! Prints, for each TI-05 test case: the per-block operation census (flops,
//! stride bins, working set, dependency class), the MPI event census, the
//! flop-per-reference balance, and the tracing-dilation cost model of §3
//! ("was the increase in accuracy worth the effort?").
//!
//! Run with: `cargo run --release --example trace_explorer`

use metasim::apps::groundtruth::GroundTruth;
use metasim::apps::registry::TestCase;
use metasim::apps::tracing::trace_workload;
use metasim::machines::fleet;
use metasim::tracer::analysis::analyze_block;
use metasim::tracer::counters::HardwareCounters;
use metasim::tracer::dilation::TracingCost;

fn human_bytes(b: u64) -> String {
    match b {
        _ if b >= 1 << 30 => format!("{:.1} GiB", b as f64 / (1u64 << 30) as f64),
        _ if b >= 1 << 20 => format!("{:.1} MiB", b as f64 / (1u64 << 20) as f64),
        _ if b >= 1 << 10 => format!("{:.1} KiB", b as f64 / (1u64 << 10) as f64),
        _ => format!("{b} B"),
    }
}

fn main() {
    let fleet = fleet();
    let gt = GroundTruth::new();

    for case in TestCase::ALL {
        let cpus = case.cpu_counts()[0];
        let workload = case.workload(cpus);
        let trace = trace_workload(&workload);

        println!("== {} @ {cpus} CPUs ==", case.label());
        println!(
            "{:<28} {:>6} {:>6} {:>6} {:>10} {:>12}",
            "block", "s1%", "sh%", "rnd%", "ws", "dependency"
        );
        for block in &trace.blocks {
            let verdict = analyze_block(block);
            println!(
                "{:<28} {:>5.0}% {:>5.0}% {:>5.0}% {:>10} {:>12}",
                block.name,
                block.bins.stride1_fraction() * 100.0,
                block.bins.short_fraction() * 100.0,
                block.bins.random_fraction() * 100.0,
                human_bytes(block.working_set),
                format!(
                    "{:?}{}",
                    verdict.detected,
                    if verdict.exact { "" } else { "*" }
                ),
            );
        }

        let counters = HardwareCounters::from_trace(&trace);
        println!(
            "counters: {:.2e} flops, {:.2e} refs -> {:.2} flops/ref",
            counters.flops as f64,
            counters.mem_refs as f64,
            trace.flops_per_ref()
        );
        println!(
            "MPI census: {} messages, {} collectives, {} moved, mean p2p {:.0} B",
            trace.mpi.message_count(),
            trace.mpi.collective_count(),
            human_bytes(trace.mpi.total_bytes()),
            trace.mpi.mean_p2p_bytes(),
        );

        // §3's cost accounting: tracing happens once, on the base system.
        let native = gt.run(case, cpus, fleet.base()).seconds;
        let full = TracingCost::metasim(native);
        let cheap = TracingCost::counters(native);
        println!(
            "tracing cost on base: native {:.1} h -> MetaSim {:.1} h (counters {:.1} h); \
             amortized over 10 targets: {:.1} h\n",
            native / 3600.0,
            full.collection_seconds() / 3600.0,
            cheap.collection_seconds() / 3600.0,
            full.amortized_seconds(10) / 3600.0,
        );
    }
    println!("(* = static analysis mislabelled the block's dependency class)");
}
