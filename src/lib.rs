//! # metasim
//!
//! A full reproduction of *"How Well Can Simple Metrics Represent the
//! Performance of HPC Applications?"* (Carrington, Laurenzano, Snavely,
//! Campbell, Davis — SC 2005): trace-convolution performance prediction for
//! HPC systems, with every substrate the study depends on built in —
//! simulated machines standing in for the ten DoD HPCMP systems, synthetic
//! probes (HPL, STREAM, GUPS, MAPS, ENHANCED MAPS, NETBENCH), a MetaSim-style
//! tracer with stride detection, the convolver implementing the paper's nine
//! metrics, and synthetic TI-05 applications with a detailed ground-truth
//! execution model.
//!
//! This crate is the facade: it re-exports the workspace crates under stable
//! module names and hosts the runnable examples and cross-crate integration
//! tests.
//!
//! ## Quickstart
//!
//! ```no_run
//! use metasim::machines::{fleet, MachineId};
//! use metasim::probes::suite::ProbeSuite;
//! use metasim::apps::registry::TestCase;
//! use metasim::apps::tracing::trace_workload;
//! use metasim::apps::groundtruth::GroundTruth;
//! use metasim::core::prediction::predict_all;
//! use metasim::tracer::analysis::analyze_dependencies;
//! use metasim::units::Seconds;
//!
//! let fleet = fleet();
//! let suite = ProbeSuite::new();
//! let gt = GroundTruth::new();
//!
//! // Trace HYCOM once on the base system...
//! let workload = TestCase::HycomStandard.workload(96);
//! let trace = trace_workload(&workload);
//! let labels = analyze_dependencies(&trace.blocks);
//! let t_base = Seconds::new(gt.run(TestCase::HycomStandard, 96, fleet.base()).seconds);
//!
//! // ...then predict any target machine from probe measurements alone.
//! let target = fleet.get(MachineId::ArlOpteron);
//! let predictions = predict_all(
//!     &trace,
//!     &labels,
//!     &suite.measure(target),
//!     &suite.measure(fleet.base()),
//!     t_base,
//! );
//! println!("metric #9 predicts {:.0} s", predictions[8]);
//! ```
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`audit`] | `metasim-audit` | `MSxxx` diagnostics: rules, auditor, renderers |
//! | [`units`] | `metasim-units` | dimension-tagged quantities (`Seconds`, `Gflops`, …) |
//! | [`obs`] | `metasim-obs` | spans, metrics, run manifests (zero-cost when off) |
//! | [`cache`] | `metasim-cache` | content-addressed on-disk artifact store |
//! | [`chaos`] | `metasim-chaos` | seeded fault injection + graceful degradation |
//! | [`stats`] | `metasim-stats` | statistics, regression, deterministic RNG |
//! | [`memsim`] | `metasim-memsim` | cache-hierarchy simulator |
//! | [`netsim`] | `metasim-netsim` | interconnect model |
//! | [`machines`] | `metasim-machines` | the 11-system HPCMP fleet |
//! | [`probes`] | `metasim-probes` | HPL/STREAM/GUPS/MAPS/NETBENCH |
//! | [`tracer`] | `metasim-tracer` | MetaSim tracer + MPIDTRACE equivalents |
//! | [`apps`] | `metasim-apps` | TI-05 applications + ground truth |
//! | [`core`] | `metasim-core` | convolver, nine metrics, dataflow graph, sharded study driver |
//! | [`fleet`] | `metasim-fleet` | seeded scenario generation: sampled machine/app spaces, fleet studies |
//! | [`report`] | `metasim-report` | tables, CSV, charts, SVG |

pub use metasim_apps as apps;
pub use metasim_audit as audit;
pub use metasim_cache as cache;
pub use metasim_chaos as chaos;
pub use metasim_core as core;
pub use metasim_fleet as fleet;
pub use metasim_machines as machines;
pub use metasim_memsim as memsim;
pub use metasim_netsim as netsim;
pub use metasim_obs as obs;
pub use metasim_probes as probes;
pub use metasim_report as report;
pub use metasim_stats as stats;
pub use metasim_tracer as tracer;
pub use metasim_units as units;
