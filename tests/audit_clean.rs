//! The property the audit engine guarantees for the shipped study: every
//! static artifact — fleet configuration, measured probe curves, the fifteen
//! (case, CPU-count) workloads and their traces — passes preflight with zero
//! error-severity diagnostics, and the individual validators agree.

use metasim::audit::{audit_value, AllowRule, AuditPolicy, Severity};
use metasim::core::{preflight, preflight_with_policy};
use metasim::machines::fleet;
use metasim::probes::suite::ProbeSuite;

#[test]
fn shipped_artifacts_pass_preflight_without_errors() {
    let f = fleet();
    let suite = ProbeSuite::new();
    let report = preflight(&f, &suite);
    assert!(
        !report.has_errors(),
        "the shipped study must be error-free:\n{report}"
    );
    assert_eq!(
        report.count(Severity::Warn),
        0,
        "the shipped study must also be warning-free (CI denies warnings):\n{report}"
    );
}

#[test]
fn preflight_survives_deny_warnings() {
    // CI runs `metasim audit --deny-warnings`; the shipped artifacts must
    // stay clean when every warning escalates to an error.
    let f = fleet();
    let suite = ProbeSuite::new();
    let report = preflight_with_policy(
        &f,
        &suite,
        AuditPolicy {
            allow: vec![],
            deny_warnings: true,
        },
    );
    assert!(!report.has_errors(), "{report}");
}

#[test]
fn allow_rules_suppress_warnings_not_errors() {
    use metasim::audit::registry::{MS008, MS101};
    let report = audit_value(|a| {
        a.finding(&MS008, "era warning");
        a.finding(&MS101, "shape error");
    });
    assert_eq!(report.count(Severity::Warn), 1);
    assert_eq!(report.count(Severity::Error), 1);

    let mut auditor = metasim::audit::Auditor::with_policy(AuditPolicy {
        allow: vec![AllowRule::parse("MS008").unwrap()],
        deny_warnings: false,
    });
    auditor.finding(&MS008, "era warning");
    auditor.finding(&MS101, "shape error");
    let report = auditor.finish();
    assert_eq!(report.count(Severity::Warn), 0, "warning suppressed");
    assert_eq!(
        report.count(Severity::Error),
        1,
        "errors are never suppressed"
    );
    assert_eq!(report.suppressed, 1);
}

#[test]
fn every_component_validator_passes_on_the_fleet() {
    let f = fleet();
    for m in f.all() {
        m.validate().unwrap_or_else(|r| panic!("{}: {r}", m.id));
        m.processor.validate().unwrap();
        m.memory.validate().unwrap();
        m.network.validate().unwrap();
    }
}
