//! Cross-crate invariants of the whole-study dataflow graph, checked
//! through the facade exactly the way downstream users see it: the graph
//! has the paper's shape, the shard cut the parallel executor runs is a
//! true antichain (no edges inside it), and every seeded parallel-safety
//! mutation trips exactly its `MS7xx` rule through the same combined lint
//! entry point the CLI uses.

use metasim::audit::AuditPolicy;
use metasim::core::dataflow::{self, DataflowModel, DataflowMutation, Node, StudyGraph};
use metasim::core::lint::{lint_all_with_policy, AnyMutation, LintModel};

#[test]
fn the_shipped_graph_has_the_paper_grid_shape() {
    let g = StudyGraph::shipped();
    let count = |kind: &str| g.nodes.iter().filter(|n| n.kind() == kind).count();
    assert_eq!(count("probes"), 11, "10 targets + the base system");
    assert_eq!(count("trace"), 15, "5 cases x 3 CPU counts");
    assert_eq!(count("groundtruth"), 165, "15 cells x 11 machines");
    assert_eq!(count("prediction"), 150, "15 cells x 10 targets");
    assert_eq!(count("reduction"), 2, "Table 4 and Table 5");
    assert_eq!(g.nodes.len(), 343);
    assert!(!g.has_cycle(), "the study has no feedback loops");
}

#[test]
fn the_shard_cut_is_a_true_antichain() {
    let g = StudyGraph::shipped();
    let cut = g.shard_cut();
    assert_eq!(cut.len(), 150, "every prediction cell is in the cut");
    for &i in &cut {
        assert!(
            matches!(g.nodes[i], Node::Prediction { .. }),
            "the cut holds only prediction cells"
        );
    }
    let in_cut: std::collections::HashSet<usize> = cut.iter().copied().collect();
    for &(from, to) in &g.edges {
        assert!(
            !(in_cut.contains(&from) && in_cut.contains(&to)),
            "edge {from}->{to} crosses the cut: predictions must be independent"
        );
    }
}

#[test]
fn the_combined_lint_certifies_the_shipped_plan() {
    let report = lint_all_with_policy(
        &LintModel::shipped(),
        &DataflowModel::shipped(),
        AuditPolicy::default(),
    );
    assert!(
        report.diagnostics.is_empty(),
        "shipped plan must pass MS5xx + MS7xx: {:?}",
        report.diagnostics
    );
}

#[test]
fn every_parallel_safety_mutation_trips_exactly_its_rule() {
    let all_codes = ["MS701", "MS702", "MS703", "MS704", "MS705"];
    for mutation in DataflowMutation::ALL {
        let report = dataflow::lint(&DataflowModel::mutated(mutation));
        let expected = mutation.expected_code();
        assert!(
            report.has_code(expected),
            "{} must trip {expected}",
            mutation.name()
        );
        for code in all_codes {
            if code != expected {
                assert!(
                    !report.has_code(code),
                    "{} tripped {code} as well as {expected}",
                    mutation.name()
                );
            }
        }
    }
}

#[test]
fn the_mutation_catalogue_is_total_and_round_trips() {
    let names = AnyMutation::all_names();
    assert_eq!(
        names.len(),
        15,
        "five formula + five dataflow + five sense mutations"
    );
    let unique: std::collections::HashSet<&str> = names.iter().copied().collect();
    assert_eq!(unique.len(), names.len(), "mutation names are unique");
    for name in names {
        let parsed = AnyMutation::parse(name).expect("every listed name parses");
        assert_eq!(parsed.name(), name, "parse/name round-trips");
    }
    let err = AnyMutation::parse("nonsense").unwrap_err();
    assert!(
        err.contains("arrival-order-merge")
            && err.contains("eq1-multiply")
            && err.contains("uncancelled-bias"),
        "the unknown-name error lists all three families: {err}"
    );
}
