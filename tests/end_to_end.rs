//! Cross-crate integration: the full methodology pipeline through the
//! `metasim` facade, exactly as a downstream user would drive it.

use metasim::apps::groundtruth::GroundTruth;
use metasim::apps::registry::TestCase;
use metasim::apps::tracing::trace_workload;
use metasim::core::metric::MetricId;
use metasim::core::prediction::predict_all;
use metasim::machines::{fleet, MachineId};
use metasim::probes::suite::ProbeSuite;
use metasim::tracer::analysis::analyze_dependencies;
use metasim::units::Seconds;

struct Pipeline {
    fleet: metasim::machines::Fleet,
    suite: ProbeSuite,
    gt: GroundTruth,
}

impl Pipeline {
    fn new() -> Self {
        Self {
            fleet: fleet(),
            suite: ProbeSuite::new(),
            gt: GroundTruth::new(),
        }
    }

    fn predict(&self, case: TestCase, cpus: u64, target: MachineId) -> ([Seconds; 9], Seconds) {
        let workload = case.workload(cpus);
        let trace = trace_workload(&workload);
        let labels = analyze_dependencies(&trace.blocks);
        let t_base = Seconds::new(self.gt.run(case, cpus, self.fleet.base()).seconds);
        let predictions = predict_all(
            &trace,
            &labels,
            &self.suite.measure(self.fleet.get(target)),
            &self.suite.measure(self.fleet.base()),
            t_base,
        );
        let actual = Seconds::new(self.gt.run(case, cpus, self.fleet.get(target)).seconds);
        (predictions, actual)
    }
}

#[test]
fn full_pipeline_produces_sane_predictions() {
    let p = Pipeline::new();
    for target in [
        MachineId::ArlOpteron,
        MachineId::MhpccP3,
        MachineId::AscSc45,
    ] {
        let (predictions, actual) = p.predict(TestCase::HycomStandard, 96, target);
        assert!(actual > 0.0);
        for (m, pred) in MetricId::ALL.iter().zip(predictions) {
            assert!(pred > 0.0 && pred.is_finite(), "{target:?} {m}");
            // No metric should be off by more than 5x on this fleet.
            let ratio = (pred / actual).get();
            assert!(
                (0.2..5.0).contains(&ratio),
                "{target:?} {m}: predicted {pred:.0} vs actual {actual:.0}"
            );
        }
    }
}

#[test]
fn metric4_reduces_to_equation_one_hpl() {
    let p = Pipeline::new();
    for target in MachineId::TARGETS {
        let (predictions, _) = p.predict(TestCase::AvusStandard, 32, target);
        assert!(
            (predictions[0] - predictions[3]).abs() / predictions[0] < 1e-9,
            "{target:?}"
        );
    }
}

#[test]
fn pipeline_is_deterministic_across_instances() {
    let a = Pipeline::new();
    let b = Pipeline::new();
    let (pa, aa) = a.predict(TestCase::RfcthStandard, 32, MachineId::ArlXeon);
    let (pb, ab) = b.predict(TestCase::RfcthStandard, 32, MachineId::ArlXeon);
    assert_eq!(pa, pb);
    assert_eq!(aa, ab);
}

#[test]
fn best_metric_beats_worst_metric_on_aggregate() {
    // Aggregated over a handful of pipeline calls (not the full study,
    // which crates/core pins): #9's error should undercut #1's.
    let p = Pipeline::new();
    let (mut e1, mut e9, mut n) = (0.0, 0.0, 0.0);
    for (case, cpus) in [
        (TestCase::AvusStandard, 64),
        (TestCase::HycomStandard, 96),
        (TestCase::Overflow2Standard, 48),
        (TestCase::RfcthStandard, 32),
    ] {
        for target in MachineId::TARGETS {
            let (pred, actual) = p.predict(case, cpus, target);
            e1 += ((pred[0] - actual) / actual).get().abs();
            e9 += ((pred[8] - actual) / actual).get().abs();
            n += 1.0;
        }
    }
    let (e1, e9) = (e1 / n * 100.0, e9 / n * 100.0);
    assert!(
        e9 < e1,
        "metric #9 ({e9:.1}%) must beat metric #1 ({e1:.1}%)"
    );
    assert!(
        e9 < 30.0,
        "metric #9 should be in the ~80%-accuracy band: {e9:.1}%"
    );
}

#[test]
fn tracing_and_counters_agree_on_totals() {
    // The cheap counter path and the full trace must count the same work.
    use metasim::tracer::counters::HardwareCounters;
    let workload = TestCase::Overflow2Standard.workload(48);
    let trace = trace_workload(&workload);
    let counters = HardwareCounters::from_trace(&trace);
    assert_eq!(counters.flops, trace.total_flops());
    assert_eq!(counters.mem_refs, trace.total_mem_refs());
    assert_eq!(counters.mem_refs, workload.total_refs());
}
