//! Fleet fidelity: the simulated machines must behave like the real 2005
//! fleet wherever the paper published data to check against.

use metasim::apps::groundtruth::GroundTruth;
use metasim::apps::paper_data;
use metasim::apps::registry::TestCase;
use metasim::machines::{fleet, MachineId};
use metasim::probes::suite::ProbeSuite;
use metasim::stats::correlation::spearman;

/// Simulated times-to-solution rank-correlate strongly with the paper's
/// published appendix tables, per test case, across every cell the paper
/// reports.
#[test]
fn simulated_runtimes_correlate_with_published_tables() {
    let f = fleet();
    let gt = GroundTruth::new();
    for case in TestCase::ALL {
        let mut sim = Vec::new();
        let mut paper = Vec::new();
        for id in MachineId::TARGETS {
            for p in case.cpu_counts() {
                if let Some(observed) = paper_data::observed_at(case, id, p) {
                    sim.push(gt.run(case, p, f.get(id)).seconds);
                    paper.push(observed);
                }
            }
        }
        assert!(sim.len() >= 17, "{case:?}: too few published cells");
        let rho = spearman(&sim, &paper).expect("well-formed runtime vectors");
        assert!(
            rho > 0.65,
            "{case:?}: simulated-vs-published Spearman {rho:.3} too weak"
        );
    }
}

/// Figure 1's crossover structure: p655 leads at L1-resident sizes, Altix
/// in the L2 region, Opteron from main memory.
#[test]
fn figure1_crossovers_match_the_paper() {
    let f = fleet();
    let suite = ProbeSuite::new();
    let bw = |id: MachineId, ws: u64| suite.measure(f.get(id)).maps.unit.bandwidth_at(ws);
    let trio = [
        MachineId::Navo655,
        MachineId::ArlAltix,
        MachineId::ArlOpteron,
    ];

    let leader = |ws: u64| {
        trio.iter()
            .copied()
            .max_by(|&a, &b| bw(a, ws).partial_cmp(&bw(b, ws)).unwrap())
            .unwrap()
    };
    assert_eq!(leader(16 << 10), MachineId::Navo655, "L1 region");
    assert_eq!(leader(192 << 10), MachineId::ArlAltix, "L2 region");
    assert_eq!(leader(128 << 20), MachineId::ArlOpteron, "main memory");
}

/// §3: "the lower right-hand portion of each unit-stride MAPS curve
/// corresponds to the STREAM score … of each random stride MAPS curve
/// corresponds to the GUPS score".
#[test]
fn maps_plateaus_match_stream_and_gups_fleetwide() {
    let f = fleet();
    let suite = ProbeSuite::new();
    for m in f.all() {
        let p = suite.measure(m);
        let unit = p.maps.unit.plateau();
        let stream = p.stream.bandwidth;
        assert!(
            (unit - stream).abs() / stream < 0.2,
            "{}: unit plateau {unit:.2e} vs STREAM {stream:.2e}",
            m.id
        );
        let random = p.maps.random.plateau();
        let gups = p.gups.effective_bandwidth();
        assert!(
            (random - gups).abs() / gups < 0.35,
            "{}: random plateau {random:.2e} vs GUPS {gups:.2e}",
            m.id
        );
    }
}

/// Strong scaling holds for every (case, machine): more processors, less
/// time — matching the published tables' near-universal pattern.
#[test]
fn strong_scaling_everywhere() {
    let f = fleet();
    let gt = GroundTruth::new();
    for case in TestCase::ALL {
        let [p0, p1, p2] = case.cpu_counts();
        for id in MachineId::TARGETS {
            let t0 = gt.run(case, p0, f.get(id)).seconds;
            let t1 = gt.run(case, p1, f.get(id)).seconds;
            let t2 = gt.run(case, p2, f.get(id)).seconds;
            assert!(
                t0 > t1 && t1 > t2,
                "{case:?} on {id}: {t0:.0} -> {t1:.0} -> {t2:.0}"
            );
        }
    }
}

/// The base system's runtimes sit inside the fleet's observed spread for
/// every test case (it's a mid-fleet p690).
#[test]
fn base_system_is_mid_fleet() {
    let f = fleet();
    let gt = GroundTruth::new();
    for case in TestCase::ALL {
        let p = case.cpu_counts()[0];
        let base = gt.run(case, p, f.base()).seconds;
        let times: Vec<f64> = MachineId::TARGETS
            .iter()
            .map(|&id| gt.run(case, p, f.get(id)).seconds)
            .collect();
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            base > min && base < max,
            "{case:?}: base {base:.0} outside fleet [{min:.0}, {max:.0}]"
        );
    }
}
