//! Cross-crate integration: generated fleets flow through the same
//! probe → trace → predict → ground-truth pipeline as the shipped grid,
//! via the facade crate.

use metasim::fleet::study::{run_fleet_study, FleetStudyConfig};
use metasim::fleet::{FleetGenerator, FleetSpec, SampledGenerator};
use metasim::memsim::analytic::Tier;

// A sampled machine is a first-class citizen of the prediction pipeline:
// probes measure it, the convolver predicts it, ground truth runs on it.
#[test]
fn sampled_machines_flow_through_the_whole_pipeline() {
    use metasim::apps::groundtruth::execute;
    use metasim::apps::tracing::trace_workload;
    use metasim::core::prediction::predict_all;
    use metasim::machines::fleet as paper_fleet;
    use metasim::memsim::analytic::resolve_tier;
    use metasim::probes::suite::MachineProbes;
    use metasim::tracer::analysis::analyze_dependencies;
    use metasim::units::Seconds;

    let generated = SampledGenerator::paper_space().generate(2, 99);
    let base = paper_fleet().base().clone();
    let base_probes =
        MachineProbes::measure_tiered(&base, resolve_tier(&base.memory, Tier::Analytic));

    let app = &generated.apps[0];
    let trace = trace_workload(&app.workload);
    let labels = analyze_dependencies(&trace.blocks);
    let t_base = execute(&base, &app.workload).seconds;
    assert!(t_base.is_finite() && t_base > 0.0);

    for machine in &generated.machines {
        let probes = MachineProbes::measure_tiered(
            &machine.config,
            resolve_tier(&machine.config.memory, Tier::Analytic),
        );
        let predictions = predict_all(&trace, &labels, &probes, &base_probes, Seconds::new(t_base));
        for p in &predictions {
            assert!(p.get().is_finite() && p.get() > 0.0, "{}", machine.name);
        }
        let actual = execute(&machine.config, &app.workload).seconds;
        assert!(actual.is_finite() && actual > 0.0, "{}", machine.name);
    }
}

// The study's export is a pure function of (spec, size, seed, tier):
// rerunning it — at a different jobs count — reproduces the bench
// byte-for-byte.
#[test]
fn fleet_bench_is_reproducible_end_to_end() {
    let spec = FleetSpec::paper_space();
    let cfg = |jobs| FleetStudyConfig {
        size: 3,
        seed: 42,
        tier: Tier::Analytic,
        jobs,
        mutation: None,
    };
    let a = run_fleet_study(&spec, &cfg(1)).expect("study runs");
    let b = run_fleet_study(&spec, &cfg(4)).expect("study runs");
    let ja = serde_json::to_string_pretty(&a.bench).unwrap();
    let jb = serde_json::to_string_pretty(&b.bench).unwrap();
    assert_eq!(ja, jb);
    assert_eq!(a.bench.schema, metasim::fleet::study::FLEET_BENCH_SCHEMA);
    assert_eq!(a.bench.seed, 42);
    assert_eq!(a.bench.size, 3);
}
