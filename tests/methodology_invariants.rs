//! Property-based invariants of the prediction methodology, exercised over
//! randomized machine perturbations and workload choices.

use metasim::apps::registry::TestCase;
use metasim::apps::tracing::trace_workload;
use metasim::core::convolver::Convolver;
use metasim::core::metric::MetricId;
use metasim::core::prediction::predict_all;
use metasim::machines::{fleet, MachineBuilder, MachineId};
use metasim::probes::suite::{MachineProbes, ProbeSuite};
use metasim::tracer::analysis::analyze_dependencies;
use metasim::units::Seconds;
use proptest::prelude::*;

fn any_case() -> impl Strategy<Value = (TestCase, u64)> {
    (0usize..5, 0usize..3).prop_map(|(c, p)| {
        let case = TestCase::ALL[c];
        (case, case.cpu_counts()[p])
    })
}

fn any_target() -> impl Strategy<Value = MachineId> {
    (0usize..10).prop_map(|i| MachineId::TARGETS[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Predictions are positive, finite, and scale-invariant in base time.
    #[test]
    fn predictions_well_formed_for_any_cell((case, cpus) in any_case(), target in any_target()) {
        let f = fleet();
        let suite = ProbeSuite::new();
        let trace = trace_workload(&case.workload(cpus));
        let labels = analyze_dependencies(&trace.blocks);
        let tp = suite.measure(f.get(target));
        let bp = suite.measure(f.base());
        let p1 = predict_all(&trace, &labels, &tp, &bp, Seconds::new(1000.0));
        let p2 = predict_all(&trace, &labels, &tp, &bp, Seconds::new(3000.0));
        for (a, b) in p1.iter().zip(&p2) {
            prop_assert!(*a > 0.0 && a.is_finite());
            prop_assert!(((*b / *a).get() - 3.0).abs() < 1e-9, "scale invariance");
        }
        // #1 == #4 for every cell.
        prop_assert!((p1[0] - p1[3]).abs() / p1[0] < 1e-9);
    }

    // A machine that is strictly better in memory cannot convolve to a
    // higher memory-dominated cost (metric #6 uses STREAM+GUPS directly).
    #[test]
    fn memory_upgrade_never_slows_metric6(bw_scale in 1.05f64..1.3, lat_scale in 0.7f64..0.95) {
        let f = fleet();
        let stock = f.get(MachineId::ArlXeon).clone();
        let upgraded = MachineBuilder::from(stock.clone())
            .scale_memory_bandwidth(bw_scale)
            .scale_memory_latency(lat_scale)
            .build()
            .expect("valid upgrade");
        let trace = trace_workload(&TestCase::AvusStandard.workload(64));
        let labels = analyze_dependencies(&trace.blocks);
        let stock_probes = MachineProbes::measure(&stock);
        let upgraded_probes = MachineProbes::measure(&upgraded);
        let cs = Convolver::new(&stock_probes).cost(MetricId::P6HplStreamGups, &trace, &labels);
        let cu = Convolver::new(&upgraded_probes).cost(MetricId::P6HplStreamGups, &trace, &labels);
        prop_assert!(cu <= cs * 1.001, "upgrade slowed #6: {cu} vs {cs}");
    }

    // Convolved costs are monotone in metric refinement direction for the
    // additive terms: #8 >= #7 and #9 >= #7 (network and dependency terms
    // only ever add time).
    #[test]
    fn additive_terms_only_add((case, cpus) in any_case(), target in any_target()) {
        let f = fleet();
        let suite = ProbeSuite::new();
        let trace = trace_workload(&case.workload(cpus));
        let labels = analyze_dependencies(&trace.blocks);
        let probes = suite.measure(f.get(target));
        let conv = Convolver::new(&probes);
        let c7 = conv.cost(MetricId::P7HplMaps, &trace, &labels);
        let c8 = conv.cost(MetricId::P8HplMapsNet, &trace, &labels);
        let c9 = conv.cost(MetricId::P9HplMapsNetDep, &trace, &labels);
        prop_assert!(c8 >= c7, "network term must add: {c8} vs {c7}");
        prop_assert!(c9 >= c7, "dependency term must add: {c9} vs {c7}");
    }
}

#[test]
fn probe_cache_survives_concurrent_study_style_access() {
    use std::sync::Arc;
    let f = Arc::new(fleet());
    let suite = Arc::new(ProbeSuite::new());
    let handles: Vec<_> = MachineId::TARGETS
        .into_iter()
        .map(|id| {
            let f = Arc::clone(&f);
            let suite = Arc::clone(&suite);
            std::thread::spawn(move || suite.measure(f.get(id)).stream.bandwidth)
        })
        .collect();
    for h in handles {
        assert!(h.join().expect("no panics") > 0.0);
    }
    assert_eq!(suite.measured_count(), 10);
}
