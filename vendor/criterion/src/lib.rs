//! Offline stand-in for the `criterion` crate.
//!
//! Provides the `criterion_group!`/`criterion_main!` macro surface, the
//! `Criterion`/`BenchmarkGroup`/`Bencher` types, and `black_box`, backed by
//! a simple wall-clock timer: each benchmark runs `sample_size` timed
//! samples after a short warm-up and prints the median per-iteration time.
//! There are no statistical comparisons or HTML reports.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement units used to annotate throughput (accepted, echoed in output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to benchmark closures; `iter` runs and times the workload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, collecting `sample_size` samples after one warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort();
        self.samples[self.samples.len() / 2]
    }
}

fn run_one(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut b);
    let med = b.median();
    match throughput {
        Some(Throughput::Elements(n)) => {
            println!("bench {id:<40} median {med:>12.2?}  ({n} elements/iter)");
        }
        Some(Throughput::Bytes(n)) => {
            println!("bench {id:<40} median {med:>12.2?}  ({n} bytes/iter)");
        }
        None => println!("bench {id:<40} median {med:>12.2?}"),
    }
}

/// Top-level bench driver (stand-in for criterion's `Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.sample_size, None, &mut f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size,
            throughput: None,
        }
    }

    /// Print the trailing summary (no-op beyond a newline).
    pub fn final_summary(&mut self) {
        println!();
    }
}

/// A named group sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(
            &format!("{}/{id}", self.name),
            self.sample_size,
            self.throughput,
            &mut f,
        );
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// Define a bench group: both the positional and struct-style forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(c: &mut Criterion) {
        c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    criterion_group!(positional, work);
    criterion_group! {
        name = configured;
        config = Criterion::default().sample_size(3);
        targets = work, work
    }

    #[test]
    fn groups_run() {
        positional();
        configured();
    }

    #[test]
    fn group_api_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2)
            .throughput(Throughput::Elements(100))
            .bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
    }
}
