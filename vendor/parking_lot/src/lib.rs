//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this minimal, API-compatible subset backed by `std::sync`. Poisoning is
//! transparently recovered (parking_lot locks are not poisoning), which is
//! the only observable semantic difference callers rely on.

use std::sync::{MutexGuard, PoisonError, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning `lock()` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
