//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest surface this workspace's property
//! tests use — `proptest!`, `prop_assert!`, `prop_assert_eq!`,
//! `prop_assume!`, range and collection strategies, tuple strategies,
//! `prop_map`, and `ProptestConfig::with_cases` — over a deterministic
//! splitmix64 generator seeded from the test's module path and case index.
//! There is no shrinking: a failing case reports its index and message, and
//! determinism makes every run reproducible.

/// Strategy combinators and the [`Strategy`](strategy::Strategy) trait.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// Generates values of `Self::Value` from a deterministic RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Keep only values satisfying `pred` (bounded retries).
        fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                pred,
            }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter `{}` rejected 1000 candidates", self.whence);
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.next_f64() * (hi - lo)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    let off = (rng.next_u64() as i128).rem_euclid(span);
                    ((self.start as i128) + off) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty integer range strategy");
                    let span = hi - lo + 1;
                    let off = (rng.next_u64() as i128).rem_euclid(span);
                    (lo + off) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($t:ident . $idx:tt),+) => {
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec()`]: a fixed length or a range.
    pub trait SizeRange {
        /// Pick a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec-length range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            lo + (rng.next_u64() as usize) % (hi - lo + 1)
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `prop::collection::vec(element, len)`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The deterministic RNG and per-test configuration.
pub mod test_runner {
    /// Number of cases to run per property (proptest's `ProptestConfig`).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// How many random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real default is 256; 64 keeps the heavier simulator
            // properties fast while still exercising a broad input space.
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic splitmix64 generator.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for one (test, case) pair: seeded by FNV-1a over the test
        /// path mixed with the case index, so every property explores a
        /// distinct but reproducible stream.
        #[must_use]
        pub fn for_case(test_path: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_path.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// `prop::…` paths (`prop::collection::vec` after a prelude glob import).
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

/// Everything a property test file needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declare deterministic property tests; see the crate docs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(__msg) = __outcome {
                        panic!(
                            "property {} failed on case {}/{}: {}",
                            stringify!($name),
                            __case,
                            __cfg.cases,
                            __msg
                        );
                    }
                }
            }
        )*
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} — {} ({}:{})",
                stringify!($cond),
                format!($($fmt)+),
                file!(),
                line!()
            ));
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}, {}:{})",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}) — {} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                r,
                format!($($fmt)+),
                file!(),
                line!()
            ));
        }
    }};
}

/// Fail the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {} (both: {:?}, {}:{})",
                stringify!($left),
                stringify!($right),
                l,
                file!(),
                line!()
            ));
        }
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u64..10, y in -2.5f64..2.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_bounds(xs in prop::collection::vec(0u64..5, 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|&x| x < 5));
        }

        #[test]
        fn tuples_and_map_compose(v in (0usize..3, 10u64..20).prop_map(|(a, b)| b + a as u64)) {
            prop_assert!((10..22).contains(&v), "v = {}", v);
        }

        #[test]
        fn assume_skips_cases(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_form_compiles(x in 0u64..4) {
            prop_assert!(x < 4);
        }
    }

    #[test]
    fn rng_is_deterministic() {
        use crate::test_runner::TestRng;
        let a: Vec<u64> = {
            let mut r = TestRng::for_case("t", 3);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case("t", 3);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = TestRng::for_case("t", 4);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }
}
