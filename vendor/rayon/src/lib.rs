//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the `par_iter()` / `into_par_iter()` entry points the workspace uses and
//! maps them onto plain sequential `std` iterators. Every adapter after the
//! entry point (`map`, `flat_map`, `collect`, …) is then the ordinary
//! `Iterator` machinery, so call sites compile unchanged and produce
//! identical (deterministically ordered) results; they simply run on one
//! thread. The hot paths that used rayon are all memoized behind caches, so
//! the sequential fallback costs one warm-up pass, not steady-state
//! throughput.

pub mod prelude {
    /// `rayon::prelude::IntoParallelIterator`, sequential edition: defers to
    /// [`IntoIterator`].
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// "Parallel" iterator over `self` (sequential in this shim).
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<I: IntoIterator + Sized> IntoParallelIterator for I {}

    /// `rayon::prelude::IntoParallelRefIterator`, sequential edition.
    pub trait IntoParallelRefIterator<'data> {
        /// The iterator produced by [`Self::par_iter`].
        type Iter: Iterator;

        /// "Parallel" iterator over `&self` (sequential in this shim).
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data + ?Sized> IntoParallelRefIterator<'data> for T
    where
        &'data T: IntoIterator,
    {
        type Iter = <&'data T as IntoIterator>::IntoIter;

        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `rayon::prelude::IntoParallelRefMutIterator`, sequential edition.
    pub trait IntoParallelRefMutIterator<'data> {
        /// The iterator produced by [`Self::par_iter_mut`].
        type Iter: Iterator;

        /// "Parallel" mutable iterator over `&mut self`.
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, T: 'data + ?Sized> IntoParallelRefMutIterator<'data> for T
    where
        &'data mut T: IntoIterator,
    {
        type Iter = <&'data mut T as IntoIterator>::IntoIter;

        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_chains_like_std() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let flat: Vec<i32> = v.into_par_iter().flat_map(|x| vec![x, x]).collect();
        assert_eq!(flat, vec![1, 1, 2, 2, 3, 3]);
    }
}
