//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this self-contained subset. Instead of serde's visitor-based data model,
//! serialization goes through an owned JSON-shaped [`Value`] tree:
//!
//! * [`Serialize`] renders `self` into a [`Value`];
//! * [`Deserialize`] reconstructs `Self` from a [`Value`].
//!
//! The companion `serde_derive` shim generates both impls for plain structs
//! and enums (the only shapes this workspace derives), and the `serde_json`
//! shim converts [`Value`] to and from JSON text. The external API surface
//! used by the workspace — `#[derive(Serialize, Deserialize)]`,
//! `serde_json::{to_string, to_string_pretty, from_str}` — is unchanged.

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON-shaped value tree: the serialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (kept exact; JSON has no integer width limit,
    /// but `u64` covers every integral type in this workspace).
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with stable (insertion) key order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the object entries, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Borrow the array elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Look up an object key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Borrow the string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Short name of the value's shape, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization failure: what was expected, where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// "expected X while deserializing Y, found Z".
    #[must_use]
    pub fn expected(what: &str, context: &str, found: &Value) -> Self {
        DeError(format!(
            "expected {what} while deserializing {context}, found {}",
            found.kind()
        ))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Render `self` into a [`Value`] tree.
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Reconstruct `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse `Self` out of `v`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

/// Fetch and deserialize a struct field from object entries (used by the
/// derive-generated code).
pub fn field<T: Deserialize>(pairs: &[(String, Value)], key: &str, ty: &str) -> Result<T, DeError> {
    let v = pairs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError(format!("missing field `{key}` while deserializing {ty}")))?;
    T::from_value(v).map_err(|e| DeError(format!("{ty}.{key}: {e}")))
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t)))),
                    _ => Err(DeError::expected("unsigned integer", stringify!($t), v)),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        u64::from_value(v).and_then(|n| {
            usize::try_from(n).map_err(|_| DeError(format!("{n} out of range for usize")))
        })
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = i64::from(*self);
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: i64 = match v {
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t))))?,
                    Value::I64(n) => *n,
                    _ => return Err(DeError::expected("integer", stringify!($t), v)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        i64::from_value(v).and_then(|n| {
            isize::try_from(n).map_err(|_| DeError(format!("{n} out of range for isize")))
        })
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(x) => Ok(*x),
            // Integral JSON numbers (e.g. "2000000000") deserialize into
            // float fields exactly, matching serde_json's behaviour.
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            _ => Err(DeError::expected("number", "f64", v)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", "String", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Deserialize for &'static str {
    /// Static string fields (block-template names) deserialize by leaking
    /// the parsed string; acceptable for the handful of config loads a
    /// process performs, mirroring how such fields are only ever read back
    /// in tools and tests.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            _ => Err(DeError::expected("string", "&'static str", v)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", "Vec", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_array()
            .ok_or_else(|| DeError::expected("array", "fixed-size array", v))?;
        if items.len() != N {
            return Err(DeError(format!(
                "expected array of length {N}, found {}",
                items.len()
            )));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(items) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($n:expr => $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v
                    .as_array()
                    .ok_or_else(|| DeError::expected("array", "tuple", v))?;
                if items.len() != $n {
                    return Err(DeError(format!(
                        "expected tuple of length {}, found {}",
                        $n,
                        items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    };
}

impl_tuple!(1 => A.0);
impl_tuple!(2 => A.0, B.1);
impl_tuple!(3 => A.0, B.1, C.2);
impl_tuple!(4 => A.0, B.1, C.2, D.3);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert!(bool::from_value(&true.to_value()).unwrap());
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<(u64, f64)> = vec![(1, 0.5), (2, 0.25)];
        let back = Vec::<(u64, f64)>::from_value(&v.to_value()).unwrap();
        assert_eq!(v, back);

        let arr = [1.0f64, 2.0, 3.0];
        let back = <[f64; 3]>::from_value(&arr.to_value()).unwrap();
        assert_eq!(arr, back);

        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn integral_json_numbers_fill_float_fields() {
        assert_eq!(f64::from_value(&Value::U64(2_000_000_000)).unwrap(), 2e9);
    }

    #[test]
    fn shape_mismatch_reports_context() {
        let err = u64::from_value(&Value::Str("x".into())).unwrap_err();
        assert!(err.to_string().contains("unsigned integer"));
    }
}
