//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the shim `serde::Serialize` / `serde::Deserialize`
//! traits (value-tree based, see the sibling `serde` crate) for the item
//! shapes this workspace actually derives:
//!
//! * structs with named fields (and unit structs),
//! * enums whose variants are unit, tuple, or named-field.
//!
//! The input token stream is parsed directly with `proc_macro` — no `syn` /
//! `quote`, since the build environment cannot fetch them. Unsupported
//! shapes (generic parameters, tuple structs, `#[serde(...)]` attributes)
//! panic at compile time with a clear message rather than silently
//! mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of a derive input.
enum Shape {
    /// `struct Name { field, ... }` (possibly empty) or `struct Name;`.
    Struct { name: String, fields: Vec<String> },
    /// `enum Name { Variant, Variant(T, ...), Variant { field, ... }, ... }`.
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    /// Tuple variant with this many elements.
    Tuple(usize),
    Named(Vec<String>),
}

/// Skip any `#[...]` attribute groups and visibility modifiers at the
/// cursor, returning the next meaningful token.
fn skip_meta(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                // The bracketed attribute body.
                match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        let body = g.stream().to_string();
                        assert!(
                            !body.starts_with("serde"),
                            "serde shim derive does not support #[serde(...)] attributes: {body}"
                        );
                    }
                    other => panic!("malformed attribute after `#`: {other:?}"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                // Optional `(crate)` / `(super)` restriction.
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => return,
        }
    }
}

/// Parse the comma-separated named fields of a brace group, returning the
/// field names. Tracks `<`/`>` depth so commas inside generic arguments
/// (e.g. `Vec<(u64, f64)>`) do not split fields; parenthesized and
/// bracketed types arrive as single `Group` tokens and need no tracking.
fn parse_named_fields(group: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = group.into_iter().peekable();
    loop {
        skip_meta(&mut iter);
        let Some(tok) = iter.next() else { break };
        let TokenTree::Ident(name) = tok else {
            panic!("expected field name, found {tok:?}");
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        fields.push(name.to_string());
        // Consume the type, up to a top-level comma.
        let mut angle_depth = 0i32;
        for tok in iter.by_ref() {
            match &tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// Count the comma-separated elements of a tuple-variant paren group.
fn count_tuple_elements(group: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_token = false;
    let mut angle_depth = 0i32;
    for tok in group {
        saw_token = true;
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => count += 1,
            _ => {}
        }
    }
    if saw_token {
        count + 1
    } else {
        0
    }
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = group.into_iter().peekable();
    loop {
        skip_meta(&mut iter);
        let Some(tok) = iter.next() else { break };
        let TokenTree::Ident(name) = tok else {
            panic!("expected enum variant name, found {tok:?}");
        };
        let kind = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                iter.next();
                VariantKind::Tuple(count_tuple_elements(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                iter.next();
                VariantKind::Named(parse_named_fields(g))
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant {
            name: name.to_string(),
            kind,
        });
        // Skip an optional explicit discriminant, then the trailing comma.
        let mut angle_depth = 0i32;
        while let Some(tok) = iter.peek() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    iter.next();
                    break;
                }
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    angle_depth += 1;
                    iter.next();
                }
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth -= 1;
                    iter.next();
                }
                _ => {
                    iter.next();
                }
            }
        }
    }
    variants
}

fn parse_shape(input: TokenStream) -> Shape {
    let mut iter = input.into_iter().peekable();
    skip_meta(&mut iter);
    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, found {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        assert!(
            p.as_char() != '<',
            "serde shim derive does not support generic type `{name}`"
        );
    }
    match kind.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Struct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Struct {
                name,
                fields: Vec::new(),
            },
            other => panic!(
                "serde shim derive supports only named-field structs; `{name}` has {other:?}"
            ),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("expected enum body for `{name}`, found {other:?}"),
        },
        other => panic!("serde shim derive supports structs and enums, found `{other}`"),
    }
}

/// Derive the shim `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Shape::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(f0) => ::serde::Value::Object(vec![\
                                 (\"{vname}\".to_string(), ::serde::Serialize::to_value(f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: String = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(vec![\
                                     (\"{vname}\".to_string(), ::serde::Value::Array(vec![{items}]))]),",
                                binders.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binders = fields.join(", ");
                            let entries: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f})),"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binders} }} => ::serde::Value::Object(vec![\
                                     (\"{vname}\".to_string(), ::serde::Value::Object(vec![{entries}]))]),"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("derive(Serialize) generated invalid Rust")
}

/// Derive the shim `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Shape::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(pairs, \"{f}\", \"{name}\")?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let pairs = v.as_object().ok_or_else(|| \
                             ::serde::DeError::expected(\"object\", \"{name}\", v))?;\n\
                         let _ = pairs;\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
                .collect();
            let data_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                                 ::serde::Deserialize::from_value(inner)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let elems: String = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&items[{i}])?,")
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                     let items = inner.as_array().ok_or_else(|| \
                                         ::serde::DeError::expected(\"array\", \"{name}::{vname}\", inner))?;\n\
                                     if items.len() != {n} {{\n\
                                         return ::std::result::Result::Err(::serde::DeError(format!(\
                                             \"expected {n} elements for {name}::{vname}, found {{}}\", items.len())));\n\
                                     }}\n\
                                     ::std::result::Result::Ok({name}::{vname}({elems}))\n\
                                 }},"
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::field(pairs, \"{f}\", \"{name}::{vname}\")?,"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                     let pairs = inner.as_object().ok_or_else(|| \
                                         ::serde::DeError::expected(\"object\", \"{name}::{vname}\", inner))?;\n\
                                     let _ = pairs;\n\
                                     ::std::result::Result::Ok({name}::{vname} {{ {inits} }})\n\
                                 }},"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => ::std::result::Result::Err(::serde::DeError(format!(\
                                     \"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                                 let (tag, inner) = &entries[0];\n\
                                 let _ = inner;\n\
                                 match tag.as_str() {{\n\
                                     {data_arms}\n\
                                     other => ::std::result::Result::Err(::serde::DeError(format!(\
                                         \"unknown {name} variant `{{other}}`\"))),\n\
                                 }}\n\
                             }},\n\
                             other => ::std::result::Result::Err(\
                                 ::serde::DeError::expected(\"enum representation\", \"{name}\", other)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("derive(Deserialize) generated invalid Rust")
}
