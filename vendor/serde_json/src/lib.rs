//! Offline stand-in for `serde_json`.
//!
//! Converts JSON text to and from the shim `serde::Value` tree. Floats are
//! printed with Rust's shortest-round-trip formatting and parsed with
//! `str::parse::<f64>`, so serialize → deserialize → serialize is
//! bit-stable (the property `fleet_serde_round_trip` asserts).

use serde::{Deserialize, Serialize, Value};

/// Serialization or parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serialize `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0)?;
    Ok(out)
}

/// Serialize `value` as human-indented JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Parse `s` and deserialize into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Parse `s` into a raw [`Value`] tree.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {} of JSON input",
            p.pos
        )));
    }
    Ok(v)
}

fn write_value(
    v: &Value,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error::new("JSON cannot represent NaN or infinity"));
            }
            // `{}` on f64 is the shortest string that parses back to the
            // same bits, so text round-trips are stable.
            let s = format!("{x}");
            out.push_str(&s);
            // Keep the float-ness visible so integral floats re-parse as
            // numbers either way (a pure-integer text would re-enter as
            // U64, which every numeric Deserialize impl accepts).
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1)?;
            }
            if !pairs.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {} of JSON input",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {} of JSON input",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain UTF-8 bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in JSON string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape {:?} at byte {}",
                                other.map(|b| b as char),
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated JSON string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid JSON number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip_through_text() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(from_str::<i32>("-3").unwrap(), -3);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn float_text_is_shortest_round_trip() {
        let xs = [1.0, 0.1, 6e-8, 2e9, 1.0 / 3.0, f64::MIN_POSITIVE];
        for x in xs {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{text}");
        }
    }

    #[test]
    fn nested_containers_round_trip() {
        let v: Vec<(u64, f64)> = vec![(4096, 1.5e9), (8192, 0.75e9)];
        let text = to_string(&v).unwrap();
        let back: Vec<(u64, f64)> = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_output_is_reparsable() {
        let v: Vec<Vec<u64>> = vec![vec![1, 2], vec![], vec![3]];
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        let back: Vec<Vec<u64>> = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<u64>("4x").is_err());
        assert!(from_str::<Vec<u64>>("[1, 2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }
}
